"""Distributed subgraph-enumeration engines: RADS and the four baselines."""

from repro.engines.base import EnumerationEngine, RunResult
from repro.engines.single import SingleMachineEngine
from repro.engines.psgl import PSgLEngine
from repro.engines.twintwig import TwinTwigEngine
from repro.engines.seed import SEEDEngine
from repro.engines.crystal import CliqueIndex, CrystalEngine
from repro.engines.multiway import MultiwayJoinEngine, compute_shares
from repro.engines.replication import ReplicationEngine

__all__ = [
    "EnumerationEngine",
    "RunResult",
    "SingleMachineEngine",
    "PSgLEngine",
    "TwinTwigEngine",
    "SEEDEngine",
    "CrystalEngine",
    "CliqueIndex",
    "MultiwayJoinEngine",
    "ReplicationEngine",
    "compute_shares",
    "RADSEngine",
]


def __getattr__(name: str):
    # RADSEngine lives in repro.core, which itself imports engines.base;
    # resolving it lazily keeps the import graph acyclic.
    if name == "RADSEngine":
        from repro.core.rads import RADSEngine

        return RADSEngine
    raise AttributeError(name)


def all_engines() -> dict[str, type]:
    """Name -> engine class for the five approaches of the paper's Sec. 7.

    Deprecated shim: resolve engines through
    :func:`repro.api.default_registry` (capability filters, aliases and
    factories) — this view keeps old imports working.
    """
    from repro.api.registry import default_registry

    return {
        spec.name: spec.engine_cls
        for spec in default_registry().specs(paper=True)
    }


def extended_engines() -> dict[str, type]:
    """The Sec. 7 engines plus the Sec. 8 related-work extensions.

    Adds BigJoin (Ammar et al.), the Afrati-Ullman single-round multiway
    join, and Fan et al.'s d-hop replication engine — the approaches the
    paper discusses but does not race.

    Deprecated shim over :func:`repro.api.default_registry`, like
    :func:`all_engines`.
    """
    from repro.api.registry import default_registry

    return {
        spec.name: spec.engine_cls
        for spec in default_registry()
        if spec.paper or spec.extension
    }
