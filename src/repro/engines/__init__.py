"""Distributed subgraph-enumeration engines: RADS and the four baselines."""

from repro.engines.base import EnumerationEngine, RunResult
from repro.engines.single import SingleMachineEngine
from repro.engines.psgl import PSgLEngine
from repro.engines.twintwig import TwinTwigEngine
from repro.engines.seed import SEEDEngine
from repro.engines.crystal import CliqueIndex, CrystalEngine
from repro.engines.multiway import MultiwayJoinEngine, compute_shares
from repro.engines.replication import ReplicationEngine

__all__ = [
    "EnumerationEngine",
    "RunResult",
    "SingleMachineEngine",
    "PSgLEngine",
    "TwinTwigEngine",
    "SEEDEngine",
    "CrystalEngine",
    "CliqueIndex",
    "MultiwayJoinEngine",
    "ReplicationEngine",
    "compute_shares",
    "RADSEngine",
]


def __getattr__(name: str):
    # RADSEngine lives in repro.core, which itself imports engines.base;
    # resolving it lazily keeps the import graph acyclic.
    if name == "RADSEngine":
        from repro.core.rads import RADSEngine

        return RADSEngine
    raise AttributeError(name)


def all_engines() -> dict[str, type]:
    """Name -> engine class for the five approaches of the paper's Sec. 7."""
    from repro.core.rads import RADSEngine

    return {
        "RADS": RADSEngine,
        "PSgL": PSgLEngine,
        "TwinTwig": TwinTwigEngine,
        "SEED": SEEDEngine,
        "Crystal": CrystalEngine,
    }


def extended_engines() -> dict[str, type]:
    """The Sec. 7 engines plus the Sec. 8 related-work extensions.

    Adds BigJoin (Ammar et al.), the Afrati-Ullman single-round multiway
    join, and Fan et al.'s d-hop replication engine — the approaches the
    paper discusses but does not race.
    """
    from repro.engines.bigjoin import BigJoinEngine

    return {
        **all_engines(),
        "BigJoin": BigJoinEngine,
        "Multiway": MultiwayJoinEngine,
        "Replication": ReplicationEngine,
    }
