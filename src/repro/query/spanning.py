"""Maximum-leaf spanning trees and connected dominating sets (paper Sec. 4.1).

The paper's Theorem 1: the minimum number of decomposition units of any
execution plan equals the connected domination number ``c_P``, and a
minimum-round plan can be read off a maximum-leaf spanning tree (MLST),
using the identity ``|V_P| = c_P + l_P`` (Douglas, 1992).

Patterns are tiny, so exhaustive enumeration is exact and cheap.
"""

from __future__ import annotations

from itertools import combinations

from repro.query.pattern import Pattern


def _is_connected_subset(pattern: Pattern, subset: frozenset[int]) -> bool:
    if not subset:
        return False
    stack = [next(iter(subset))]
    seen = {stack[0]}
    while stack:
        u = stack.pop()
        for w in pattern.adj(u):
            if w in subset and w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == len(subset)


def _is_dominating(pattern: Pattern, subset: frozenset[int]) -> bool:
    for v in pattern.vertices():
        if v in subset:
            continue
        if not (pattern.adj(v) & subset):
            return False
    return True


def connected_dominating_sets(
    pattern: Pattern, size: int
) -> list[frozenset[int]]:
    """All connected dominating sets of exactly ``size`` vertices."""
    result = []
    for combo in combinations(pattern.vertices(), size):
        subset = frozenset(combo)
        if _is_dominating(pattern, subset) and _is_connected_subset(pattern, subset):
            result.append(subset)
    return result


def minimum_connected_dominating_set(pattern: Pattern) -> frozenset[int]:
    """A minimum CDS (exhaustive search; ties broken lexicographically)."""
    for size in range(1, pattern.num_vertices + 1):
        sets = connected_dominating_sets(pattern, size)
        if sets:
            return min(sets, key=sorted)
    raise ValueError("pattern is not connected")


def connected_domination_number(pattern: Pattern) -> int:
    """``c_P``: size of a minimum connected dominating set."""
    return len(minimum_connected_dominating_set(pattern))


def spanning_trees(pattern: Pattern) -> list[tuple[tuple[int, int], ...]]:
    """All spanning trees, each as a sorted tuple of edges."""
    n = pattern.num_vertices
    edges = list(pattern.edges())
    result: list[tuple[tuple[int, int], ...]] = []
    for combo in combinations(edges, n - 1):
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        acyclic = True
        for u, v in combo:
            ru, rv = find(u), find(v)
            if ru == rv:
                acyclic = False
                break
            parent[ru] = rv
        if acyclic:
            result.append(tuple(sorted(combo)))
    return result


def tree_leaf_count(n: int, tree_edges: tuple[tuple[int, int], ...]) -> int:
    """Number of degree-1 vertices of a spanning tree."""
    degree = [0] * n
    for u, v in tree_edges:
        degree[u] += 1
        degree[v] += 1
    return sum(1 for d in degree if d == 1)


def maximum_leaf_spanning_tree(
    pattern: Pattern,
) -> tuple[tuple[tuple[int, int], ...], int]:
    """An MLST and its leaf count ``l_P`` (exhaustive over spanning trees)."""
    best_tree: tuple[tuple[int, int], ...] | None = None
    best_leaves = -1
    for tree in spanning_trees(pattern):
        leaves = tree_leaf_count(pattern.num_vertices, tree)
        if leaves > best_leaves:
            best_tree, best_leaves = tree, leaves
    if best_tree is None:
        raise ValueError("pattern has no spanning tree (disconnected?)")
    return best_tree, best_leaves
