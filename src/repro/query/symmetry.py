"""Automorphism-based symmetry breaking (paper Sec. 2, following
Grochow & Kellis, RECOMB 2007).

Duplicate embeddings (automorphic images of the same subgraph instance) are
eliminated by imposing a *preserved order*: a set of constraints
``f(u) < f(u')`` over data-vertex ids.  The constraints are derived by
iterative orbit stabilisation, which guarantees each orbit of embeddings
under ``Aut(P)`` retains exactly one representative.
"""

from __future__ import annotations

from repro.query.pattern import Pattern


def automorphisms(pattern: Pattern) -> list[tuple[int, ...]]:
    """All automorphisms of ``pattern`` as tuples ``sigma[u] = image``."""
    n = pattern.num_vertices
    degrees = [pattern.degree(u) for u in range(n)]
    result: list[tuple[int, ...]] = []
    mapping = [-1] * n
    used = [False] * n

    def backtrack(u: int) -> None:
        if u == n:
            result.append(tuple(mapping))
            return
        for v in range(n):
            if used[v] or degrees[v] != degrees[u]:
                continue
            ok = True
            for w in pattern.adj(u):
                if w < u and not pattern.has_edge(v, mapping[w]):
                    ok = False
                    break
            if not ok:
                continue
            # Non-edges must map to non-edges (bijectivity on same graph).
            for w in range(u):
                if not pattern.has_edge(u, w) and pattern.has_edge(v, mapping[w]):
                    ok = False
                    break
            if not ok:
                continue
            mapping[u] = v
            used[v] = True
            backtrack(u + 1)
            mapping[u] = -1
            used[v] = False

    backtrack(0)
    return result


def orbits(pattern: Pattern) -> list[frozenset[int]]:
    """Vertex orbits under the full automorphism group."""
    autos = automorphisms(pattern)
    seen: set[int] = set()
    result: list[frozenset[int]] = []
    for u in pattern.vertices():
        if u in seen:
            continue
        orbit = frozenset(sigma[u] for sigma in autos)
        seen |= orbit
        result.append(orbit)
    return result


def symmetry_breaking_constraints(pattern: Pattern) -> list[tuple[int, int]]:
    """Pairwise constraints ``(u, u')`` meaning ``f(u) < f(u')``.

    Property (verified by tests): the number of embeddings satisfying the
    constraints times ``|Aut(P)|`` equals the unconstrained embedding count.
    """
    group = automorphisms(pattern)
    constraints: list[tuple[int, int]] = []
    for u in pattern.vertices():
        orbit = {sigma[u] for sigma in group}
        constraints.extend((u, v) for v in sorted(orbit) if v != u)
        group = [sigma for sigma in group if sigma[u] == u]
        if len(group) == 1:
            break
    return constraints


def satisfies_constraints(
    embedding: tuple[int, ...], constraints: list[tuple[int, int]]
) -> bool:
    """Check ``f(u) < f(u')`` for every constraint pair."""
    return all(embedding[u] < embedding[v] for u, v in constraints)


def constraint_map(
    constraints: list[tuple[int, int]], num_vertices: int
) -> tuple[list[list[int]], list[list[int]]]:
    """Index constraints by vertex for incremental checking.

    Returns ``(smaller_than, greater_than)`` where ``smaller_than[u]`` lists
    vertices whose image must be **greater** than ``f(u)`` (i.e. u < them),
    and ``greater_than[u]`` lists vertices whose image must be smaller.
    """
    smaller: list[list[int]] = [[] for _ in range(num_vertices)]
    greater: list[list[int]] = [[] for _ in range(num_vertices)]
    for u, v in constraints:
        smaller[u].append(v)
        greater[v].append(u)
    return smaller, greater
