"""Pattern-level graph isomorphism (for tiny query graphs).

Used by tests and tooling to reason about the query set itself — e.g.
asserting that the reconstructed q6 and q7 are genuinely different
patterns, or deduplicating automatically generated patterns.
"""

from __future__ import annotations

from repro.query.pattern import Pattern


def _invariant(pattern: Pattern) -> tuple:
    """Cheap isomorphism invariant: sorted degree + neighbour-degree data."""
    per_vertex = sorted(
        (
            pattern.degree(u),
            tuple(sorted(pattern.degree(w) for w in pattern.adj(u))),
        )
        for u in pattern.vertices()
    )
    return (pattern.num_vertices, pattern.num_edges, tuple(per_vertex))


def find_isomorphism(
    a: Pattern, b: Pattern
) -> dict[int, int] | None:
    """A vertex mapping witnessing a ~ b, or None.

    Plain backtracking with degree pruning — patterns have <= ~10 vertices.
    """
    if _invariant(a) != _invariant(b):
        return None
    n = a.num_vertices
    mapping: dict[int, int] = {}
    used: set[int] = set()

    # Order a's vertices most-constrained-first for fast failure.
    order = sorted(a.vertices(), key=lambda u: -a.degree(u))

    def backtrack(i: int) -> bool:
        if i == n:
            return True
        u = order[i]
        mapped_neighbours = [w for w in a.adj(u) if w in mapping]
        for v in b.vertices():
            if v in used or b.degree(v) != a.degree(u):
                continue
            if any(not b.has_edge(v, mapping[w]) for w in mapped_neighbours):
                continue
            # Non-adjacency must be preserved too.
            if any(
                b.has_edge(v, mapping[w])
                for w in mapping
                if w not in a.adj(u)
            ):
                continue
            mapping[u] = v
            used.add(v)
            if backtrack(i + 1):
                return True
            used.discard(v)
            del mapping[u]
        return False

    return dict(mapping) if backtrack(0) else None


def are_isomorphic(a: Pattern, b: Pattern) -> bool:
    """True iff the two patterns are isomorphic."""
    return find_isomorphism(a, b) is not None
