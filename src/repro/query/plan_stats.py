"""Execution-plan analytics: cost estimates and plan-space statistics.

The paper picks plans with three closed-form heuristics (Sec. 4).  This
module adds the tooling a practitioner needs around that: degree-statistics
based cardinality estimates per round, a what-if comparison across the
whole (tiny) plan space, and a summary object used by the CLI's
``plan`` command and by the plan-explorer example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.graph import Graph
from repro.query.pattern import Pattern
from repro.query.plan import (
    DecompositionUnit,
    ExecutionPlan,
    enumerate_execution_plans,
    score_plan,
)


@dataclass
class RoundEstimate:
    """Estimated work for one R-Meef round under a data-graph profile."""

    unit: DecompositionUnit
    expansion_factor: float
    verification_edges: int
    estimated_results: float


@dataclass
class PlanReport:
    """Everything the tooling reports about one execution plan."""

    plan: ExecutionPlan
    score: float
    start_span: int
    rounds: list[RoundEstimate] = field(default_factory=list)

    @property
    def estimated_final_results(self) -> float:
        """Cardinality estimate after the last round."""
        return self.rounds[-1].estimated_results if self.rounds else 0.0

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"plan with {self.plan.num_rounds} round(s), "
            f"score {self.score:.2f}, span(u_start) = {self.start_span}",
        ]
        for i, r in enumerate(self.rounds):
            leaves = ",".join(map(str, r.unit.leaves))
            lines.append(
                f"  round {i}: pivot u{r.unit.pivot} -> leaves {{{leaves}}}"
                f"  x{r.expansion_factor:.1f} expansion,"
                f" {r.verification_edges} verification edge(s),"
                f" ~{r.estimated_results:.0f} results"
            )
        return "\n".join(lines)


def _selectivity(graph: Graph) -> float:
    """Probability that a random vertex pair is adjacent."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def estimate_plan(
    pattern: Pattern, plan: ExecutionPlan, graph: Graph
) -> PlanReport:
    """Degree-statistics cardinality model for a plan on a data graph.

    Round ``i`` expands each current result by ``avg_degree`` per leaf,
    then filters by edge selectivity once per verification edge — the
    standard independence-assumption estimate.  Coarse, but it ranks plans
    the same way the paper's score function aims to.
    """
    avg_degree = graph.average_degree()
    selectivity = _selectivity(graph)
    report = PlanReport(
        plan=plan,
        score=score_plan(plan),
        start_span=pattern.span(plan.start_vertex),
    )
    results = float(graph.num_vertices)
    for unit in plan.units:
        expansion = avg_degree ** len(unit.leaves)
        filtered = expansion * (
            selectivity ** unit.num_verification_edges
        )
        results = max(results * filtered, 0.0)
        report.rounds.append(
            RoundEstimate(
                unit=unit,
                expansion_factor=expansion,
                verification_edges=unit.num_verification_edges,
                estimated_results=results,
            )
        )
    return report


def cost_based_plan(pattern: Pattern, graph: Graph) -> ExecutionPlan:
    """Cost-based alternative to the paper's closed-form heuristics.

    Enumerates the minimum-round plan space (tiny for real queries) and
    picks the plan with the smallest *total* estimated intermediate
    cardinality across rounds — the quantity that actually drives memory
    and verification traffic.  The paper's score (Eq. 4) breaks ties, so
    the two selectors agree wherever the cardinality model has no
    preference.
    """
    plans = enumerate_execution_plans(pattern)
    if not plans:
        raise ValueError("pattern admits no execution plan")

    def key(plan: ExecutionPlan) -> tuple[float, float]:
        report = estimate_plan(pattern, plan, graph)
        total = sum(r.estimated_results for r in report.rounds)
        return (total, -score_plan(plan))

    return min(plans, key=key)


def plan_space_summary(
    pattern: Pattern, graph: Graph | None = None
) -> dict[str, object]:
    """Statistics over all minimum-round plans of a pattern."""
    plans = enumerate_execution_plans(pattern)
    scores = [score_plan(p) for p in plans]
    spans = [pattern.span(p.start_vertex) for p in plans]
    summary: dict[str, object] = {
        "num_plans": len(plans),
        "rounds": plans[0].num_rounds if plans else 0,
        "score_min": min(scores) if scores else 0.0,
        "score_max": max(scores) if scores else 0.0,
        "span_min": min(spans) if spans else 0,
        "span_max": max(spans) if spans else 0,
        "distinct_start_vertices": len(
            {p.start_vertex for p in plans}
        ),
    }
    if graph is not None and plans:
        estimates = [
            estimate_plan(pattern, p, graph).estimated_final_results
            for p in plans
        ]
        summary["estimate_min"] = min(estimates)
        summary["estimate_max"] = max(estimates)
    return summary
