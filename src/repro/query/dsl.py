"""Compact edge-list DSL and fluent builder for query patterns.

The grammar (documented in ROADMAP.md, "Public API"):

.. code-block:: text

    pattern := term ("," term)*
    term    := vertex ("-" vertex)*      # a lone vertex, an edge, or a path
    vertex  := NAME (":" LABEL)?
    NAME    := [A-Za-z0-9_]+             # opaque token; ids by first appearance
    LABEL   := [A-Za-z0-9_]+             # integer literal or symbolic label

Vertex names are opaque: query-vertex ids ``0..k-1`` are assigned in order
of first appearance.  ``a-b-c`` is the path ``a-b, b-c``; repeating an edge
is idempotent; ``a-a`` (a self loop) is rejected.  A label may be attached
at any occurrence of a vertex, but conflicting labels are an error; once
one vertex is labeled, every vertex must be.  Symbolic labels are resolved
through ``label_map`` when given, otherwise they are auto-numbered
``0, 1, ...`` in order of first appearance, skipping integers the text
already uses explicitly (``"a:0-b:person"`` gives ``person`` the value 1).

>>> from repro.query.dsl import pattern
>>> p = pattern("a-b, b-c, c-a")
>>> p.num_vertices, p.num_edges, p.name
(3, 3, 'triangle')
>>> from repro.query.patterns import named_patterns
>>> p == named_patterns()["triangle"]
True
>>> pattern("a-b-c-d-a").isomorphic_to(named_patterns()["q1"])
True
>>> lp = pattern("a:person-b:org, b-c:person, c-a")
>>> lp.labels
(0, 1, 0)
>>> pattern(str(p)) == p
True
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.query.pattern import Pattern

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.enumeration.labeled import LabeledPattern

_TOKEN = re.compile(r"[A-Za-z0-9_]+\Z")

#: Separators between terms: commas, semicolons and newlines.
_TERM_SPLIT = re.compile(r"[,;\n]")


class PatternSyntaxError(ValueError):
    """The DSL text (or builder state) does not describe a valid pattern."""


def _check_token(token: str, what: str) -> str:
    if not _TOKEN.match(token):
        raise PatternSyntaxError(
            f"invalid {what} {token!r}: expected letters, digits or '_'"
        )
    return token


def _resolve_labels(
    order: "list[str]",
    raw: "dict[str, int | str]",
    vertex_names: "list[str]",
    label_map: "Mapping[str, int] | None",
) -> tuple[int, ...]:
    """Integer label per vertex id, auto-numbering symbolic labels.

    ``order`` lists the distinct raw symbolic labels in first-appearance
    order; ``raw`` maps vertex name -> integer or symbolic label.
    """
    unlabeled = [name for name in vertex_names if name not in raw]
    if unlabeled:
        raise PatternSyntaxError(
            f"partially labeled pattern: vertices "
            f"{', '.join(sorted(unlabeled))} have no label "
            f"(label all vertices or none)"
        )
    symbol_values: dict[str, int] = {}
    if label_map is not None:
        for symbol in order:
            if symbol not in label_map:
                raise PatternSyntaxError(
                    f"label {symbol!r} missing from label_map "
                    f"(known: {', '.join(sorted(map(str, label_map)))})"
                )
            symbol_values[symbol] = int(label_map[symbol])
    else:
        # Auto-numbering must never merge a symbol with an explicitly
        # numbered label ("a:0-b:person" means two distinct labels), so
        # integers already spent are skipped.
        used = {value for value in raw.values() if isinstance(value, int)}
        next_value = 0
        for symbol in order:
            while next_value in used:
                next_value += 1
            symbol_values[symbol] = next_value
            used.add(next_value)
    return tuple(
        value if isinstance(value, int) else symbol_values[value]
        for value in (raw[name] for name in vertex_names)
    )


class PatternBuilder:
    """Fluent construction of (optionally labeled) patterns.

    >>> from repro.query.dsl import PatternBuilder
    >>> p = (PatternBuilder(name="wedge")
    ...      .vertex("a").vertex("b").vertex("c")
    ...      .edge("a", "b").edge("b", "c")
    ...      .build())
    >>> p.name, p.num_edges
    ('wedge', 2)
    >>> lp = (PatternBuilder()
    ...       .vertex("x", label="person").vertex("y", label="org")
    ...       .edge("x", "y").build())
    >>> lp.labels
    (0, 1)
    """

    def __init__(self, name: str | None = None):
        self._name = name
        self._order: list[str] = []
        self._ids: dict[str, int] = {}
        self._edges: set[tuple[int, int]] = set()
        self._labels: dict[str, int | str] = {}
        self._label_order: list[str] = []

    # ------------------------------------------------------------------
    def name(self, name: str | None) -> "PatternBuilder":
        """Set (or clear) the pattern name."""
        self._name = name
        return self

    def vertex(
        self, name: str, *, label: "int | str | None" = None
    ) -> "PatternBuilder":
        """Declare a vertex (idempotent), optionally attaching a label."""
        name = _check_token(str(name), "vertex name")
        if name not in self._ids:
            self._ids[name] = len(self._order)
            self._order.append(name)
        if label is not None:
            if isinstance(label, str):
                _check_token(label, "label")
                if label not in self._label_order:
                    self._label_order.append(label)
            elif int(label) < 0:
                raise PatternSyntaxError(
                    f"labels must be non-negative, got {label!r}"
                )
            else:
                label = int(label)
            previous = self._labels.setdefault(name, label)
            if previous != label:
                raise PatternSyntaxError(
                    f"conflicting labels for vertex {name!r}: "
                    f"{previous!r} vs {label!r}"
                )
        return self

    def edge(
        self,
        u: str,
        v: str,
        *,
        u_label: "int | str | None" = None,
        v_label: "int | str | None" = None,
    ) -> "PatternBuilder":
        """Add an undirected edge, declaring endpoints as needed."""
        self.vertex(u, label=u_label)
        self.vertex(v, label=v_label)
        a, b = self._ids[str(u)], self._ids[str(v)]
        if a == b:
            raise PatternSyntaxError(f"self loop {u!r}-{v!r} not allowed")
        self._edges.add((min(a, b), max(a, b)))
        return self

    def path(self, *names: str) -> "PatternBuilder":
        """Chain ``names`` with consecutive edges (the DSL's ``a-b-c``)."""
        if len(names) < 2:
            raise PatternSyntaxError("a path needs at least two vertices")
        for u, v in zip(names, names[1:]):
            self.edge(u, v)
        return self

    # ------------------------------------------------------------------
    def build(
        self,
        *,
        label_map: "Mapping[str, int] | None" = None,
        require_connected: bool = True,
    ) -> "Pattern | LabeledPattern":
        """The finished pattern (labeled iff any vertex carries a label).

        Unnamed patterns that are structurally one of the registered named
        queries adopt that name (``a-b, b-c, c-a`` builds ``triangle``).
        """
        if not self._order:
            raise PatternSyntaxError("empty pattern")
        pattern = Pattern(
            len(self._order), sorted(self._edges), name=self._name
        )
        if require_connected and not pattern.is_connected():
            raise PatternSyntaxError(
                f"pattern is not connected: {format_pattern(pattern)!r}"
            )
        if self._name is None:
            named = _find_registered_name(pattern)
            if named is not None:
                pattern = pattern.copy_with_name(named)
        if not self._labels:
            return pattern
        from repro.enumeration.labeled import LabeledPattern

        labels = _resolve_labels(
            self._label_order, self._labels, self._order, label_map
        )
        return LabeledPattern(pattern, labels)


def _find_registered_name(pattern: Pattern) -> str | None:
    """Name of the registered pattern isomorphic to ``pattern``, if any."""
    from repro.query.patterns import find_named

    return find_named(pattern)


def parse_pattern(
    text: str,
    *,
    name: str | None = None,
    label_map: "Mapping[str, int] | None" = None,
    require_connected: bool = True,
) -> "Pattern | LabeledPattern":
    """Parse DSL ``text`` into a :class:`Pattern` (or ``LabeledPattern``).

    See the module docstring for the grammar.  ``label_map`` resolves
    symbolic labels to integers; without it they are auto-numbered in
    first-appearance order.
    """
    if not isinstance(text, str):
        raise TypeError(f"pattern text must be a string, got {type(text).__name__}")
    builder = PatternBuilder(name=name)
    terms = [t.strip() for t in _TERM_SPLIT.split(text)]
    if not any(terms):
        raise PatternSyntaxError(f"empty pattern text: {text!r}")
    for term in terms:
        if not term:
            continue
        stops = [s.strip() for s in term.split("-")]
        parsed: list[tuple[str, str | None]] = []
        for stop in stops:
            token, _, label = stop.partition(":")
            parsed.append((token.strip(), label.strip() if label else None))
        if len(parsed) == 1:
            vertex, label = parsed[0]
            builder.vertex(vertex, label=_coerce_label(label))
            continue
        for (u, u_label), (v, v_label) in zip(parsed, parsed[1:]):
            builder.edge(
                u, v,
                u_label=_coerce_label(u_label),
                v_label=_coerce_label(v_label),
            )
    return builder.build(
        label_map=label_map, require_connected=require_connected
    )


#: ``repro.pattern(...)`` — the facade's documented spelling.
pattern = parse_pattern


def _coerce_label(label: str | None) -> "int | str | None":
    if label is None:
        return None
    _check_token(label, "label")
    return int(label) if label.isdigit() else label


def format_pattern(
    target: Pattern, labels: "Iterable[int] | None" = None
) -> str:
    """DSL text for ``target`` — the inverse of :func:`parse_pattern`.

    Vertex ``u`` prints as ``v{u}``; labels (when given) are attached at
    each vertex's first occurrence.  When listing the sorted edges alone
    would make first-appearance order disagree with vertex ids, explicit
    lone-vertex terms pin the ordering, so
    ``parse_pattern(format_pattern(p)) == p`` always holds.

    >>> from repro.query.patterns import triangle
    >>> format_pattern(triangle())
    'v0-v1, v0-v2, v1-v2'
    """
    n = target.num_vertices
    label_list = None if labels is None else list(labels)
    seen: list[int] = []
    for u, v in target.edges():
        for x in (u, v):
            if x not in seen:
                seen.append(x)

    emitted: set[int] = set()

    def stop(u: int) -> str:
        if label_list is not None and u not in emitted:
            emitted.add(u)
            return f"v{u}:{label_list[u]}"
        return f"v{u}"

    terms: list[str] = []
    if seen != list(range(n)):
        terms.extend(stop(u) for u in range(n))
    terms.extend(f"{stop(u)}-{stop(v)}" for u, v in target.edges())
    return ", ".join(terms)
