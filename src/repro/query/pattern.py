"""Query pattern: a small, connected, unlabeled, undirected graph.

Patterns are tiny (the paper's largest query has 6 vertices, plus the
running example with 10), so this class favours clarity over raw speed:
adjacency is a tuple of frozensets.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator


class Pattern:
    """Immutable query graph with vertices ``0..k-1``."""

    __slots__ = ("_adjacency", "_edges", "_name")

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]],
        name: str | None = None,
    ):
        adjacency: list[set[int]] = [set() for _ in range(num_vertices)]
        edge_set: set[tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                raise ValueError("self loops are not allowed in patterns")
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise ValueError("pattern edge endpoint out of range")
            adjacency[u].add(v)
            adjacency[v].add(u)
            edge_set.add((min(u, v), max(u, v)))
        self._adjacency: tuple[frozenset[int], ...] = tuple(
            frozenset(s) for s in adjacency
        )
        self._edges: tuple[tuple[int, int], ...] = tuple(sorted(edge_set))
        self._name = name

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable name (falls back to a structural tag)."""
        if self._name is not None:
            return self._name
        return f"pattern<{self.num_vertices}v,{self.num_edges}e>"

    @property
    def num_vertices(self) -> int:
        """Number of query vertices."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of query edges."""
        return len(self._edges)

    def vertices(self) -> range:
        """Iterate vertex ids."""
        return range(self.num_vertices)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate each edge once as ``(u, v)`` with ``u < v``."""
        return iter(self._edges)

    def adj(self, u: int) -> frozenset[int]:
        """Neighbour set of ``u``."""
        return self._adjacency[u]

    def degree(self, u: int) -> int:
        """Degree of ``u``."""
        return len(self._adjacency[u])

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the edge exists."""
        return v in self._adjacency[u]

    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Connectivity check (patterns are required to be connected)."""
        if self.num_vertices == 0:
            return True
        seen = {0}
        queue = deque([0])
        while queue:
            u = queue.popleft()
            for w in self._adjacency[u]:
                if w not in seen:
                    seen.add(w)
                    queue.append(w)
        return len(seen) == self.num_vertices

    def distances_from(self, u: int) -> list[int]:
        """BFS distances from ``u`` (-1 for unreachable)."""
        dist = [-1] * self.num_vertices
        dist[u] = 0
        queue = deque([u])
        while queue:
            v = queue.popleft()
            for w in self._adjacency[v]:
                if dist[w] == -1:
                    dist[w] = dist[v] + 1
                    queue.append(w)
        return dist

    def span(self, u: int) -> int:
        """Paper Def. 2: the eccentricity of ``u`` within the pattern."""
        return max(self.distances_from(u))

    def diameter(self) -> int:
        """Longest shortest path between any two pattern vertices."""
        return max(self.span(u) for u in self.vertices())

    def max_clique_size(self) -> int:
        """Size of the largest clique (exhaustive; patterns are tiny)."""
        best = 1 if self.num_vertices else 0

        def grow(clique: list[int], candidates: set[int]) -> None:
            nonlocal best
            best = max(best, len(clique))
            for v in sorted(candidates):
                grow(clique + [v], candidates & self._adjacency[v])

        grow([], set(self.vertices()))
        return best

    def relabel(self, mapping: dict[int, int]) -> "Pattern":
        """Return an isomorphic pattern with vertices renamed by ``mapping``."""
        edges = [(mapping[u], mapping[v]) for u, v in self._edges]
        return Pattern(self.num_vertices, edges, name=self._name)

    def copy_with_name(self, name: str | None) -> "Pattern":
        """The same structure under a different (or cleared) name.

        Equality and hashing are structural, so the copy compares equal to
        the original — the name is purely cosmetic.
        """
        return Pattern(self.num_vertices, self._edges, name=name)

    # -- canonicalization ----------------------------------------------
    def automorphism_group(self) -> list[tuple[int, ...]]:
        """All automorphisms as tuples ``sigma[u] = image``.

        Delegates to :func:`repro.query.symmetry.automorphisms`; exposed
        here so DSL-built patterns can be deduplicated and symmetry-broken
        without reaching into the symmetry module.
        """
        from repro.query.symmetry import automorphisms

        return automorphisms(self)

    def canonical_form(self) -> "Pattern":
        """An isomorphic relabeling that is identical for isomorphic inputs.

        Two patterns are isomorphic iff their canonical forms have equal
        edge sets (i.e. compare ``==``).  The canonical vertex order sorts
        by a degree invariant first, then minimises the adjacency encoding
        by backtracking — exact, and fast for query-sized graphs.
        """
        perm = _canonical_permutation(self)
        return self.relabel(dict(enumerate(perm)))

    def canonical_key(self) -> tuple:
        """Hashable isomorphism-class key (equal iff patterns isomorphic)."""
        form = self.canonical_form()
        return (form.num_vertices, form._edges)

    def isomorphic_to(self, other: "Pattern") -> bool:
        """True iff ``self`` and ``other`` are isomorphic."""
        return self.canonical_key() == other.canonical_key()

    def to_dsl(self) -> str:
        """The pattern in the edge-list DSL (``repro.pattern`` inverts)."""
        from repro.query.dsl import format_pattern

        return format_pattern(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self._edges == other._edges
        )

    def __hash__(self) -> int:
        return hash((self.num_vertices, self._edges))

    def __str__(self) -> str:
        return self.to_dsl()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pattern({self.name}, |V|={self.num_vertices}, |E|={self.num_edges})"


def _canonical_permutation(pattern: "Pattern") -> list[int]:
    """``perm[u]`` = canonical id of vertex ``u``.

    Canonical position ``i`` must host a vertex of the ``i``-th smallest
    invariant class (degree, then sorted neighbour degrees); within that
    constraint the sequence of lower-adjacency bitmasks (``row[i]`` has bit
    ``j`` set iff canonical vertices ``i`` and ``j < i`` are adjacent) is
    minimised lexicographically by backtracking with prefix pruning.
    """
    n = pattern.num_vertices
    if n == 0:
        return []
    invariant = {
        u: (
            pattern.degree(u),
            tuple(sorted(pattern.degree(w) for w in pattern.adj(u))),
        )
        for u in pattern.vertices()
    }
    # The invariant each canonical position must carry, smallest first.
    slots = sorted(invariant[u] for u in pattern.vertices())
    best_rows: list[int] | None = None
    best_placement: list[int] = []
    placement: list[int] = []
    rows: list[int] = []
    used = [False] * n

    def place(i: int) -> None:
        nonlocal best_rows, best_placement
        if i == n:
            if best_rows is None or rows < best_rows:
                best_rows = list(rows)
                best_placement = list(placement)
            return
        for v in range(n):
            if used[v] or invariant[v] != slots[i]:
                continue
            row = 0
            for j, w in enumerate(placement):
                if pattern.has_edge(v, w):
                    row |= 1 << j
            if best_rows is not None:
                prefix = best_rows[: i + 1]
                if rows + [row] > prefix:
                    continue
            used[v] = True
            placement.append(v)
            rows.append(row)
            place(i + 1)
            rows.pop()
            placement.pop()
            used[v] = False

    place(0)
    perm = [0] * n
    for position, vertex in enumerate(best_placement):
        perm[vertex] = position
    return perm
