"""Pattern generators and a catalogue of classic motifs.

Random connected patterns power the property-based tests (and fuzzing
engines against the oracle); the parametric families (cycles, wheels,
books, complete bipartite) extend the fixed paper query set when users
want to stress specific plan shapes.
"""

from __future__ import annotations

import random

from repro.query.pattern import Pattern


def random_connected_pattern(
    num_vertices: int,
    extra_edges: int = 0,
    seed: int = 0,
) -> Pattern:
    """A uniformly-random tree plus ``extra_edges`` random chords.

    Connectivity is guaranteed by construction (random recursive tree);
    chords are sampled without replacement from the non-edges.
    """
    if num_vertices < 2:
        raise ValueError("patterns need at least two vertices")
    rng = random.Random(seed)
    edges = {
        (rng.randrange(v), v) for v in range(1, num_vertices)
    }
    non_edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(u + 1, num_vertices)
        if (u, v) not in edges
    ]
    rng.shuffle(non_edges)
    edges.update(non_edges[: max(0, extra_edges)])
    return Pattern(
        num_vertices, sorted(edges), name=f"random{num_vertices}s{seed}"
    )


def cycle(n: int) -> Pattern:
    """The n-cycle C_n."""
    if n < 3:
        raise ValueError("cycles need at least three vertices")
    return Pattern(
        n, [(i, (i + 1) % n) for i in range(n)], name=f"cycle{n}"
    )


def wheel(spokes: int) -> Pattern:
    """A hub connected to every vertex of a ``spokes``-cycle."""
    if spokes < 3:
        raise ValueError("wheels need at least three spokes")
    rim = [(1 + i, 1 + (i + 1) % spokes) for i in range(spokes)]
    hub = [(0, 1 + i) for i in range(spokes)]
    return Pattern(spokes + 1, rim + hub, name=f"wheel{spokes}")


def book(pages: int) -> Pattern:
    """``pages`` triangles sharing one common edge (the book graph)."""
    if pages < 1:
        raise ValueError("books need at least one page")
    edges = [(0, 1)]
    for p in range(pages):
        v = 2 + p
        edges.extend([(0, v), (1, v)])
    return Pattern(pages + 2, edges, name=f"book{pages}")


def complete_bipartite(a: int, b: int) -> Pattern:
    """K_{a,b}."""
    if a < 1 or b < 1:
        raise ValueError("both sides need at least one vertex")
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return Pattern(a + b, edges, name=f"k{a}{b}")
