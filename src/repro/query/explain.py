"""First-class query explanation: why an engine runs a query the way it does.

:class:`QueryExplanation` packages everything the paper's planner decides
about a query — the chosen decomposition units (pivot, leaves, star /
sibling / cross edges), the Def. 10 matching order, the symmetry-breaking
conditions, per-round cost-model estimates (when a data graph is supplied)
and the runner-up plans with their Eq. (4) heuristic scores — as one
serializable record mirroring :class:`repro.engines.base.RunResult`:
``to_dict()`` / ``from_dict()`` round-trip through JSON, and ``str()``
pretty-prints the whole plan.

Entry points: :meth:`repro.api.session.Session.explain`,
:meth:`repro.engines.base.EnumerationEngine.explain`, and the CLI's
``repro explain [--json]``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any

from repro.query.pattern import Pattern
from repro.query.plan import (
    ExecutionPlan,
    best_execution_plan,
    enumerate_execution_plans,
    score_plan,
)
from repro.query.symmetry import automorphisms, symmetry_breaking_constraints

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.graph.graph import Graph

#: Runner-up plans reported by default (the plan space itself is tiny).
DEFAULT_ALTERNATIVES = 5


@dataclass(frozen=True)
class RoundExplanation:
    """One decomposition unit ``dp_i`` plus its cost-model estimates.

    ``expansion_factor`` and ``estimated_results`` come from the
    degree-statistics model of :mod:`repro.query.plan_stats` and are
    ``None`` when no data graph was supplied to :func:`explain_query`.
    """

    index: int
    pivot: int
    leaves: tuple[int, ...]
    star_edges: tuple[tuple[int, int], ...]
    sibling_edges: tuple[tuple[int, int], ...]
    cross_edges: tuple[tuple[int, int], ...]
    expansion_factor: float | None = None
    estimated_results: float | None = None

    @property
    def verification_edges(self) -> int:
        """|E_sib| + |E_cro| — the filtering power of this round."""
        return len(self.sibling_edges) + len(self.cross_edges)


@dataclass(frozen=True)
class PlanAlternative:
    """A runner-up plan: its pivot order and heuristic rankings."""

    pivots: tuple[int, ...]
    rounds: int
    score: float
    start_span: int


@dataclass
class QueryExplanation:
    """The full, serializable explanation of one engine/query pairing."""

    engine: str
    pattern_name: str
    pattern_dsl: str
    num_vertices: int
    num_edges: int
    rounds: list[RoundExplanation]
    matching_order: list[int]
    symmetry_conditions: list[tuple[int, int]]
    automorphism_count: int
    score: float
    start_vertex: int
    start_span: int
    plan_space: dict[str, Any] = field(default_factory=dict)
    alternatives: list[PlanAlternative] = field(default_factory=list)
    labels: tuple[int, ...] | None = None
    graph_summary: dict[str, Any] | None = None
    extras: dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    # -- derived -------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        """Number of decomposition units in the chosen plan."""
        return len(self.rounds)

    def verification_edges(self) -> list[tuple[int, int]]:
        """All sibling + cross edges across the chosen plan's rounds."""
        edges: list[tuple[int, int]] = []
        for unit in self.rounds:
            edges.extend(unit.sibling_edges)
            edges.extend(unit.cross_edges)
        return edges

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict form (tuples become lists; from_dict inverts)."""
        data = asdict(self)
        data["rounds"] = [
            {
                **asdict(unit),
                "leaves": list(unit.leaves),
                "star_edges": [list(e) for e in unit.star_edges],
                "sibling_edges": [list(e) for e in unit.sibling_edges],
                "cross_edges": [list(e) for e in unit.cross_edges],
            }
            for unit in self.rounds
        ]
        data["symmetry_conditions"] = [
            list(c) for c in self.symmetry_conditions
        ]
        data["alternatives"] = [
            {**asdict(alt), "pivots": list(alt.pivots)}
            for alt in self.alternatives
        ]
        data["labels"] = None if self.labels is None else list(self.labels)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QueryExplanation":
        """Rebuild a QueryExplanation from :meth:`to_dict` output."""
        labels = data.get("labels")
        return cls(
            engine=data["engine"],
            pattern_name=data["pattern_name"],
            pattern_dsl=data["pattern_dsl"],
            num_vertices=int(data["num_vertices"]),
            num_edges=int(data["num_edges"]),
            rounds=[
                RoundExplanation(
                    index=int(unit["index"]),
                    pivot=int(unit["pivot"]),
                    leaves=tuple(int(v) for v in unit["leaves"]),
                    star_edges=_edge_tuple(unit["star_edges"]),
                    sibling_edges=_edge_tuple(unit["sibling_edges"]),
                    cross_edges=_edge_tuple(unit["cross_edges"]),
                    expansion_factor=_opt_float(unit.get("expansion_factor")),
                    estimated_results=_opt_float(
                        unit.get("estimated_results")
                    ),
                )
                for unit in data["rounds"]
            ],
            matching_order=[int(u) for u in data["matching_order"]],
            symmetry_conditions=[
                (int(u), int(v)) for u, v in data["symmetry_conditions"]
            ],
            automorphism_count=int(data["automorphism_count"]),
            score=float(data["score"]),
            start_vertex=int(data["start_vertex"]),
            start_span=int(data["start_span"]),
            plan_space=dict(data.get("plan_space") or {}),
            alternatives=[
                PlanAlternative(
                    pivots=tuple(int(p) for p in alt["pivots"]),
                    rounds=int(alt["rounds"]),
                    score=float(alt["score"]),
                    start_span=int(alt["start_span"]),
                )
                for alt in data.get("alternatives") or []
            ],
            labels=None if labels is None else tuple(int(x) for x in labels),
            graph_summary=data.get("graph_summary"),
            extras=dict(data.get("extras") or {}),
            notes=data.get("notes", ""),
        )

    # -- presentation --------------------------------------------------
    def __str__(self) -> str:
        lines = [
            f"{self.pattern_name} via {self.engine}: "
            f"{self.pattern_dsl} "
            f"({self.num_vertices} vertices, {self.num_edges} edges)"
        ]
        if self.labels is not None:
            lines.append(f"labels: {list(self.labels)}")
        lines.append(
            f"plan: {self.num_rounds} round(s), score {self.score:.2f}, "
            f"start u{self.start_vertex} (span {self.start_span})"
        )
        for unit in self.rounds:
            leaves = ",".join(f"u{v}" for v in unit.leaves)
            parts = [
                f"  round {unit.index}: pivot u{unit.pivot} -> "
                f"leaves {{{leaves}}}"
            ]
            if unit.verification_edges:
                verify = ", ".join(
                    f"(u{a},u{b})"
                    for a, b in (*unit.sibling_edges, *unit.cross_edges)
                )
                parts.append(f"verify {verify}")
            else:
                parts.append("no verification edges")
            if unit.estimated_results is not None:
                parts.append(
                    f"x{unit.expansion_factor:.1f} expansion, "
                    f"~{unit.estimated_results:.0f} results"
                )
            lines.append(" | ".join(parts))
        lines.append(
            "matching order: "
            + " -> ".join(f"u{v}" for v in self.matching_order)
        )
        if self.symmetry_conditions:
            lines.append(
                "symmetry breaking: "
                + ", ".join(
                    f"f(u{u}) < f(u{v})"
                    for u, v in self.symmetry_conditions
                )
                + f"  (|Aut| = {self.automorphism_count})"
            )
        else:
            lines.append(
                f"symmetry breaking: none needed (|Aut| = "
                f"{self.automorphism_count})"
            )
        if self.plan_space:
            lines.append(
                f"plan space: {self.plan_space.get('num_plans')} "
                f"minimum-round plans, scores "
                f"{self.plan_space.get('score_min', 0.0):.2f}.."
                f"{self.plan_space.get('score_max', 0.0):.2f}"
            )
        for alt in self.alternatives:
            pivots = ",".join(f"u{p}" for p in alt.pivots)
            lines.append(
                f"  runner-up: pivots [{pivots}] "
                f"score {alt.score:.2f} "
                f"({alt.rounds} rounds, span {alt.start_span})"
            )
        for key, value in self.extras.items():
            lines.append(f"{self.engine} {key}: {value}")
        if self.notes:
            lines.append(f"strategy: {self.notes}")
        return "\n".join(lines)


def _edge_tuple(edges: Any) -> tuple[tuple[int, int], ...]:
    return tuple((int(u), int(v)) for u, v in edges)


def _opt_float(value: Any) -> float | None:
    return None if value is None else float(value)


def explain_query(
    query: "Pattern | Any",
    *,
    engine: str = "",
    graph: "Graph | None" = None,
    plan: ExecutionPlan | None = None,
    labels: "tuple[int, ...] | None" = None,
    extras: dict[str, Any] | None = None,
    notes: str = "",
    max_alternatives: int = DEFAULT_ALTERNATIVES,
) -> QueryExplanation:
    """Build a :class:`QueryExplanation` for ``query``.

    ``query`` is a :class:`Pattern` or ``LabeledPattern``; ``plan``
    overrides the default :func:`best_execution_plan` choice (engines pass
    their own provider's plan); ``graph`` enables the per-round cost-model
    estimates; ``extras`` carries engine-specific structure.
    """
    pattern = query
    if hasattr(query, "pattern") and hasattr(query, "labels"):
        pattern = query.pattern
        labels = tuple(query.labels) if labels is None else labels
    if plan is None:
        plan = best_execution_plan(pattern)
    estimates: list[tuple[float | None, float | None]] = [
        (None, None)
    ] * len(plan.units)
    graph_summary: dict[str, Any] | None = None
    if graph is not None:
        from repro.query.plan_stats import estimate_plan

        report = estimate_plan(pattern, plan, graph)
        estimates = [
            (r.expansion_factor, r.estimated_results) for r in report.rounds
        ]
        graph_summary = {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "average_degree": graph.average_degree(),
        }
    rounds = [
        RoundExplanation(
            index=i,
            pivot=unit.pivot,
            leaves=unit.leaves,
            star_edges=unit.star_edges,
            sibling_edges=unit.sibling_edges,
            cross_edges=unit.cross_edges,
            expansion_factor=expansion,
            estimated_results=results,
        )
        for i, (unit, (expansion, results)) in enumerate(
            zip(plan.units, estimates)
        )
    ]
    candidates = enumerate_execution_plans(pattern)
    scores = [score_plan(p) for p in candidates]
    plan_space: dict[str, Any] = {
        "num_plans": len(candidates),
        "rounds": candidates[0].num_rounds if candidates else 0,
        "score_min": min(scores) if scores else 0.0,
        "score_max": max(scores) if scores else 0.0,
        "distinct_start_vertices": len(
            {p.start_vertex for p in candidates}
        ),
    }
    chosen_units = tuple(plan.units)
    ranked = sorted(
        (p for p in candidates if tuple(p.units) != chosen_units),
        key=lambda p: (-score_plan(p), tuple(u.pivot for u in p.units)),
    )
    alternatives = [
        PlanAlternative(
            pivots=tuple(u.pivot for u in p.units),
            rounds=p.num_rounds,
            score=score_plan(p),
            start_span=pattern.span(p.start_vertex),
        )
        for p in ranked[: max(0, max_alternatives)]
    ]
    return QueryExplanation(
        engine=engine,
        pattern_name=pattern.name,
        pattern_dsl=pattern.to_dsl(),
        num_vertices=pattern.num_vertices,
        num_edges=pattern.num_edges,
        rounds=rounds,
        matching_order=list(plan.matching_order()),
        symmetry_conditions=list(symmetry_breaking_constraints(pattern)),
        automorphism_count=len(automorphisms(pattern)),
        score=score_plan(plan),
        start_vertex=plan.start_vertex,
        start_span=pattern.span(plan.start_vertex),
        plan_space=plan_space,
        alternatives=alternatives,
        labels=labels,
        graph_summary=graph_summary,
        extras=dict(extras or {}),
        notes=notes,
    )
