"""Named query patterns.

``q1``-``q8`` reconstruct the paper's Fig. 7 query set from the textual
constraints in Sec. 7 (the figure itself is not part of the provided text):

- q2, q4, q5 contain a triangle on vertices (u0, u1, u2); q1, q3, q6, q7, q8
  are triangle-free ("no cliques with more than two vertices").
- q5 extends q4 with an *end vertex* u5 (degree-1), per Exp-3.
- Queries grow from 4 to 6 vertices ("communication ... beyond control when
  the query vertices reach 6").

``cq1``-``cq4`` reconstruct Fig. 14 (queries "all of which have cliques",
borrowed from the Crystal paper).
"""

from __future__ import annotations

from repro.query.pattern import Pattern


def _p(name: str, n: int, edges: list[tuple[int, int]]) -> Pattern:
    pattern = Pattern(n, edges, name=name)
    if not pattern.is_connected():
        raise AssertionError(f"{name} must be connected")
    return pattern


def square() -> Pattern:
    """4-cycle."""
    return _p("square", 4, [(0, 1), (1, 2), (2, 3), (3, 0)])


def triangle() -> Pattern:
    """3-clique."""
    return _p("triangle", 3, [(0, 1), (1, 2), (0, 2)])


def tailed_triangle() -> Pattern:
    """Triangle (u0,u1,u2) plus a tail u3 attached to u0."""
    return _p("tailed_triangle", 4, [(0, 1), (1, 2), (0, 2), (0, 3)])


def five_cycle() -> Pattern:
    """5-cycle."""
    return _p("five_cycle", 5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])


def house() -> Pattern:
    """4-cycle (u1,u2,u4,u3) with an apex u0 forming triangle (u0,u1,u2)."""
    return _p(
        "house", 5,
        [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4)],
    )


def house_with_tail() -> Pattern:
    """House plus the pendant *end vertex* u5 hanging off the apex."""
    return _p(
        "house_with_tail", 6,
        [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4), (0, 5)],
    )


def theta_graph() -> Pattern:
    """Theta graph: poles u0, u2 joined by three paths (lengths 2, 2, 3).

    Triangle-free.  Not isomorphic to the domino (q7): the theta graph has
    no Hamiltonian cycle (longest cycle length 5), while the domino is a
    6-cycle plus a chord.
    """
    return _p(
        "theta_graph", 6,
        [(0, 1), (1, 2), (0, 3), (3, 2), (0, 4), (4, 5), (5, 2)],
    )


def domino() -> Pattern:
    """Two 4-cycles sharing an edge (2x1 grid; triangle-free)."""
    return _p(
        "domino", 6,
        [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)],
    )


def k33() -> Pattern:
    """Complete bipartite K3,3 (densest triangle-free 6-vertex query)."""
    return _p(
        "k33", 6,
        [(u, v) for u in (0, 1, 2) for v in (3, 4, 5)],
    )


def k4() -> Pattern:
    """4-clique."""
    return _p("k4", 4, [(u, v) for u in range(4) for v in range(u + 1, 4)])


def k4_with_tail() -> Pattern:
    """4-clique plus pendant vertex."""
    edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
    return _p("k4_with_tail", 5, edges + [(0, 4)])


def bowtie() -> Pattern:
    """Two triangles sharing vertex u0."""
    return _p("bowtie", 5, [(0, 1), (0, 2), (1, 2), (0, 3), (0, 4), (3, 4)])


def double_k4() -> Pattern:
    """Two 4-cliques sharing the edge (u0, u1)."""
    edges = [(u, v) for u in range(4) for v in range(u + 1, 4)]
    edges += [(0, 4), (0, 5), (1, 4), (1, 5), (4, 5)]
    return _p("double_k4", 6, edges)


def path(n: int) -> Pattern:
    """Simple path with ``n`` vertices."""
    return _p(f"path{n}", n, [(i, i + 1) for i in range(n - 1)])


def star(leaves: int) -> Pattern:
    """Star with ``leaves`` leaves around centre 0."""
    return _p(f"star{leaves}", leaves + 1, [(0, i + 1) for i in range(leaves)])


def clique(n: int) -> Pattern:
    """Complete graph K_n."""
    return _p(f"k{n}", n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def running_example() -> Pattern:
    """The 10-vertex pattern of the paper's Fig. 2 running example.

    Edges recovered from Examples 3-4: decomposition units dp0 = (u0; u1, u2,
    u7), dp1 = (u1; u3, u4), dp2 = (u2; u5, u6), dp3 = (u0; u8, u9) plus the
    verification edges (u1,u2), (u3,u4), (u4,u5), (u5,u6), (u8,u9) that the
    MLST of Example 4 erases.
    """
    return _p(
        "running_example", 10,
        [
            (0, 1), (0, 2), (0, 7), (0, 8), (0, 9),
            (1, 3), (1, 4), (2, 5), (2, 6),
            (1, 2), (3, 4), (4, 5), (5, 6), (8, 9),
        ],
    )


PAPER_QUERIES: dict[str, Pattern] = {
    "q1": square(),
    "q2": tailed_triangle(),
    "q3": five_cycle(),
    "q4": house(),
    "q5": house_with_tail(),
    "q6": theta_graph(),
    "q7": domino(),
    "q8": k33(),
}

CLIQUE_QUERIES: dict[str, Pattern] = {
    "cq1": k4(),
    "cq2": k4_with_tail(),
    "cq3": bowtie(),
    "cq4": double_k4(),
}


def paper_query(name: str) -> Pattern:
    """Look up one of q1..q8."""
    return PAPER_QUERIES[name]


def clique_query(name: str) -> Pattern:
    """Look up one of cq1..cq4."""
    return CLIQUE_QUERIES[name]


def named_patterns() -> dict[str, Pattern]:
    """All registered patterns, keyed by every accepted name.

    The paper's opaque ids (``q4``, ``cq1``) and the patterns' human
    names (``house``, ``k4``) are both keys, mapping to the same objects
    — ``named_patterns()["house"] == named_patterns()["q4"]``.

    >>> from repro.query.patterns import named_patterns
    >>> named_patterns()["house"] is named_patterns()["q4"]
    True
    """
    extra = {
        "triangle": triangle(),
        "path3": path(3),
        "path4": path(4),
        "star3": star(3),
        "k5": clique(5),
        "running_example": running_example(),
    }
    catalogue = {**PAPER_QUERIES, **CLIQUE_QUERIES, **extra}
    # Human aliases: each paper/clique query is also reachable under its
    # pattern's structural name ("q4" <-> "house").
    for queries in (PAPER_QUERIES, CLIQUE_QUERIES):
        for query in queries.values():
            catalogue.setdefault(query.name, query)
    return catalogue


#: Lazily built canonical-key -> preferred registered name map.
_CANONICAL_NAMES: dict[tuple, str] | None = None


def find_named(pattern: Pattern) -> str | None:
    """The registered name of the pattern isomorphic to ``pattern``, if any.

    Matching is by canonical form (:meth:`Pattern.canonical_key`), so a
    DSL-built or generated pattern dedupes against the catalogue no matter
    how its vertices are numbered.  Paper ids win over human aliases when
    both name the same structure.

    >>> from repro.query.patterns import find_named, house
    >>> find_named(house().relabel({0: 4, 1: 3, 2: 2, 3: 1, 4: 0}))
    'q4'
    """
    global _CANONICAL_NAMES
    if _CANONICAL_NAMES is None:
        mapping: dict[tuple, str] = {}
        # Reversed insertion order, so earlier (paper-id) keys overwrite
        # later aliases and win the lookup.
        for name, query in reversed(list(named_patterns().items())):
            mapping[query.canonical_key()] = name
        _CANONICAL_NAMES = mapping
    return _CANONICAL_NAMES.get(pattern.canonical_key())
