"""Decomposition units, execution plans, plan scoring, matching order
(paper Sec. 3.2, 4 and Def. 10).

An execution plan is a sequence of units ``(dp_0, ..., dp_l)`` where each
unit has a pivot and a non-empty leaf set, leaves never reappear in later
units, and each pivot (beyond the first) already occurs in the union of the
previous units.  Plans are computed by enumerating connected dominating sets
of minimum size (Theorem 1), orderings and leaf assignments, then ranked by
the paper's three heuristics:

1. minimum number of rounds (= units);
2. minimum span of ``dp0.piv`` (maximises the SM-E share);
3. maximum verification-edge score, Eq. (4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import permutations, product

from repro.query.pattern import Pattern
from repro.query.spanning import connected_dominating_sets


@dataclass(frozen=True)
class DecompositionUnit:
    """One unit ``dp_i``: a pivot vertex and its leaf vertices.

    Edge sets follow Sec. 3.2: ``star_edges`` are (pivot, leaf) expansion
    edges; ``sibling_edges`` connect two leaves of this unit;
    ``cross_edges`` connect a leaf to a vertex matched in an earlier round.
    Sibling and cross edges are the *verification* edges.
    """

    pivot: int
    leaves: tuple[int, ...]
    star_edges: tuple[tuple[int, int], ...]
    sibling_edges: tuple[tuple[int, int], ...]
    cross_edges: tuple[tuple[int, int], ...]

    @property
    def vertices(self) -> tuple[int, ...]:
        """Pivot followed by leaves."""
        return (self.pivot, *self.leaves)

    @property
    def num_verification_edges(self) -> int:
        """|E_sib| + |E_cro| (the filtering power of this round)."""
        return len(self.sibling_edges) + len(self.cross_edges)


@dataclass
class ExecutionPlan:
    """A validated execution plan over ``pattern``."""

    pattern: Pattern
    units: list[DecompositionUnit]
    _order: list[int] = field(default_factory=list, repr=False)

    @property
    def num_rounds(self) -> int:
        """Number of units (the paper counts |PL| rounds after round 0)."""
        return len(self.units)

    @property
    def start_vertex(self) -> int:
        """``dp0.piv`` — the starting query vertex u_start."""
        return self.units[0].pivot

    def subpattern_vertices(self, i: int) -> list[int]:
        """Vertices of ``P_i`` (union of units 0..i) in matching order."""
        prefix_len = 1 + sum(len(u.leaves) for u in self.units[: i + 1])
        return self.matching_order()[:prefix_len]

    def matching_order(self) -> list[int]:
        """Total order of Def. 10 (cached)."""
        if not self._order:
            self._order = matching_order(self.pattern, self.units)
        return self._order

    def verification_edges(self) -> list[tuple[int, int]]:
        """All sibling + cross edges across units."""
        edges: list[tuple[int, int]] = []
        for unit in self.units:
            edges.extend(unit.sibling_edges)
            edges.extend(unit.cross_edges)
        return edges

    def validate(self) -> None:
        """Raise ValueError if the plan violates Defs. 6-7."""
        pattern = self.pattern
        covered: set[int] = set()
        for i, unit in enumerate(self.units):
            if not unit.leaves:
                raise ValueError(f"unit {i} has no leaves")
            if i > 0 and unit.pivot not in covered:
                raise ValueError(f"pivot of unit {i} not in P_{i-1}")
            for leaf in unit.leaves:
                if leaf in covered:
                    raise ValueError(f"leaf {leaf} reappears in unit {i}")
                if not pattern.has_edge(unit.pivot, leaf):
                    raise ValueError(f"({unit.pivot},{leaf}) not a pattern edge")
            covered.update(unit.vertices)
        if covered != set(pattern.vertices()):
            raise ValueError("plan does not cover all pattern vertices")
        # Every pattern edge must be a star, sibling or cross edge exactly once.
        seen: set[tuple[int, int]] = set()
        for unit in self.units:
            for e in (*unit.star_edges, *unit.sibling_edges, *unit.cross_edges):
                key = (min(e), max(e))
                if key in seen:
                    raise ValueError(f"edge {key} covered twice")
                seen.add(key)
        if seen != set(pattern.edges()):
            raise ValueError("plan does not cover all pattern edges")


def _build_plan(
    pattern: Pattern,
    pivots: tuple[int, ...],
    leaf_owner: dict[int, int],
) -> ExecutionPlan | None:
    """Assemble a plan from an ordered pivot tuple and a leaf->unit map.

    ``leaf_owner[v]`` is the index of the unit hosting ``v`` as a leaf
    (pivots beyond the first are leaves of some earlier unit too).
    Returns None if any unit ends up with an empty leaf set.
    """
    unit_leaves: list[list[int]] = [[] for _ in pivots]
    for leaf, owner in leaf_owner.items():
        unit_leaves[owner].append(leaf)
    if any(not leaves for leaves in unit_leaves):
        return None
    units: list[DecompositionUnit] = []
    placed: set[int] = set()
    for i, pivot in enumerate(pivots):
        leaves = tuple(sorted(unit_leaves[i]))
        leaf_set = set(leaves)
        star = tuple((pivot, leaf) for leaf in leaves)
        sibling = tuple(
            (a, b)
            for a, b in pattern.edges()
            if a in leaf_set and b in leaf_set
        )
        prev = placed | {pivot}
        cross = tuple(
            (a, b)
            for a, b in pattern.edges()
            if (
                (a in leaf_set and b in prev and b != pivot)
                or (b in leaf_set and a in prev and a != pivot)
            )
        )
        units.append(
            DecompositionUnit(pivot, leaves, star, sibling, cross)
        )
        placed |= {pivot, *leaves}
    plan = ExecutionPlan(pattern, units)
    plan.validate()
    return plan


def _leaf_assignments(
    pattern: Pattern, pivots: tuple[int, ...], limit: int
) -> list[dict[int, int]]:
    """Enumerate leaf->unit assignments compatible with the pivot order."""
    pivot_index = {p: i for i, p in enumerate(pivots)}
    choices: list[tuple[int, list[int]]] = []
    for v in pattern.vertices():
        if v == pivots[0]:
            continue
        if v in pivot_index:
            # A later pivot must be hosted by a strictly earlier unit.
            hosts = [
                pivot_index[p]
                for p in pattern.adj(v)
                if p in pivot_index and pivot_index[p] < pivot_index[v]
            ]
        else:
            hosts = sorted(
                pivot_index[p] for p in pattern.adj(v) if p in pivot_index
            )
        if not hosts:
            return []
        choices.append((v, hosts))
    assignments: list[dict[int, int]] = []
    for combo in product(*(hosts for _, hosts in choices)):
        assignments.append(
            {v: owner for (v, _), owner in zip(choices, combo)}
        )
        if len(assignments) >= limit:
            break
    return assignments


def enumerate_execution_plans(
    pattern: Pattern,
    extra_rounds: int = 0,
    max_plans: int = 5000,
) -> list[ExecutionPlan]:
    """All distinct-pivot execution plans with ``c_P + extra_rounds`` units."""
    for size in range(1, pattern.num_vertices + 1):
        cds_list = connected_dominating_sets(pattern, size)
        if cds_list:
            target = size + extra_rounds
            break
    else:  # pragma: no cover - connected patterns always have a CDS
        return []
    if extra_rounds:
        cds_list = connected_dominating_sets(pattern, target)
    plans: list[ExecutionPlan] = []
    for cds in cds_list:
        for pivots in permutations(sorted(cds)):
            # Prefix-connectivity: each pivot adjacent to an earlier one.
            valid = all(
                any(p in pattern.adj(pivots[i]) for p in pivots[:i])
                for i in range(1, len(pivots))
            )
            if not valid:
                continue
            budget = max(1, max_plans - len(plans))
            for leaf_owner in _leaf_assignments(pattern, pivots, budget):
                plan = _build_plan(pattern, pivots, leaf_owner)
                if plan is not None:
                    plans.append(plan)
            if len(plans) >= max_plans:
                return plans
    return plans


def score_plan(plan: ExecutionPlan, rho: float = 1.0) -> float:
    """Eq. (4): early verification edges and heavy pivots score higher."""
    total = 0.0
    for i, unit in enumerate(plan.units):
        total += unit.num_verification_edges / (i + 1) ** rho
        total += plan.pattern.degree(unit.pivot) / (i + 1)
    return total


def best_execution_plan(pattern: Pattern, rho: float = 1.0) -> ExecutionPlan:
    """Apply the paper's rules: min rounds, min span(dp0.piv), max score."""
    plans = enumerate_execution_plans(pattern)
    if not plans:
        raise ValueError("no execution plan found")
    min_span = min(pattern.span(p.start_vertex) for p in plans)
    candidates = [p for p in plans if pattern.span(p.start_vertex) == min_span]
    best = max(
        candidates,
        key=lambda p: (
            score_plan(p, rho),
            # Deterministic tie-break.
            tuple(-u.pivot for u in p.units),
        ),
    )
    return best


def plan_from_pivots(
    pattern: Pattern, pivots: list[int]
) -> ExecutionPlan:
    """Build the greedy-earliest-assignment plan for an explicit pivot order."""
    assignments = _leaf_assignments(pattern, tuple(pivots), limit=1)
    if not assignments:
        raise ValueError("pivot order admits no valid plan")
    plan = _build_plan(pattern, tuple(pivots), assignments[0])
    if plan is None:
        raise ValueError("pivot order yields an empty unit")
    return plan


def random_star_plan(pattern: Pattern, seed: int = 0) -> ExecutionPlan:
    """RanS baseline (Sec. C.2): a random valid plan, rounds unconstrained."""
    rng = random.Random(seed)
    for _ in range(200):
        pivots: list[int] = [rng.randrange(pattern.num_vertices)]
        covered = {pivots[0]} | set(pattern.adj(pivots[0]))
        while covered != set(pattern.vertices()):
            frontier = [
                v for v in sorted(covered)
                if v not in pivots and (pattern.adj(v) - covered)
            ]
            if not frontier:
                break
            nxt = rng.choice(frontier)
            pivots.append(nxt)
            covered |= pattern.adj(nxt)
        else:
            try:
                return plan_from_pivots(pattern, pivots)
            except ValueError:
                continue
    # Deterministic fallback: any enumerated plan.
    return enumerate_execution_plans(pattern)[0]


def random_minimum_round_plan(pattern: Pattern, seed: int = 0) -> ExecutionPlan:
    """RanM baseline: uniform choice among minimum-round plans."""
    plans = enumerate_execution_plans(pattern)
    rng = random.Random(seed)
    return plans[rng.randrange(len(plans))]


def matching_order(
    pattern: Pattern, units: list[DecompositionUnit]
) -> list[int]:
    """The total order of Def. 10 over the pattern vertices."""
    pivot_index = {unit.pivot: i for i, unit in enumerate(units)}
    order: list[int] = [units[0].pivot]
    for unit in units:
        def leaf_key(u: int) -> tuple:
            if u in pivot_index:
                # Pivot leaves first, by the index of the unit they pivot.
                return (0, pivot_index[u])
            return (1, -pattern.degree(u), u)

        order.extend(sorted(unit.leaves, key=leaf_key))
    return order
