"""Query patterns, DSL, symmetry breaking, execution plans and explanation
(paper Sec. 2-4 plus the declarative front door)."""

from repro.query.pattern import Pattern
from repro.query.dsl import (
    PatternBuilder,
    PatternSyntaxError,
    format_pattern,
    parse_pattern,
)
from repro.query.explain import (
    PlanAlternative,
    QueryExplanation,
    RoundExplanation,
    explain_query,
)
from repro.query.patterns import (
    CLIQUE_QUERIES,
    PAPER_QUERIES,
    clique_query,
    find_named,
    named_patterns,
    paper_query,
)
from repro.query.symmetry import (
    automorphisms,
    orbits,
    symmetry_breaking_constraints,
)
from repro.query.spanning import (
    connected_dominating_sets,
    maximum_leaf_spanning_tree,
    minimum_connected_dominating_set,
    spanning_trees,
)
from repro.query.plan import (
    DecompositionUnit,
    ExecutionPlan,
    best_execution_plan,
    enumerate_execution_plans,
    matching_order,
    plan_from_pivots,
    random_minimum_round_plan,
    random_star_plan,
    score_plan,
)

__all__ = [
    "Pattern",
    "PatternBuilder",
    "PatternSyntaxError",
    "PlanAlternative",
    "QueryExplanation",
    "RoundExplanation",
    "explain_query",
    "format_pattern",
    "parse_pattern",
    "PAPER_QUERIES",
    "CLIQUE_QUERIES",
    "paper_query",
    "clique_query",
    "find_named",
    "named_patterns",
    "automorphisms",
    "orbits",
    "symmetry_breaking_constraints",
    "maximum_leaf_spanning_tree",
    "minimum_connected_dominating_set",
    "connected_dominating_sets",
    "spanning_trees",
    "DecompositionUnit",
    "ExecutionPlan",
    "enumerate_execution_plans",
    "best_execution_plan",
    "plan_from_pivots",
    "score_plan",
    "matching_order",
    "random_star_plan",
    "random_minimum_round_plan",
]
