"""Partitioned data-graph views: ownership, border vertices, border distance.

Storage model follows the paper exactly (Sec. 2): each machine stores the
adjacency lists of the vertices it *owns* plus a full ownership map
(one byte per vertex, built offline).  An edge resides on a machine iff at
least one endpoint is owned there, so an edge can reside on two machines.
A *border vertex* is an owned vertex with at least one foreign neighbour.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.graph import Graph


class MachinePartition:
    """The slice of the data graph owned by one machine ``M_t``."""

    def __init__(self, graph: Graph, owner: np.ndarray, machine_id: int):
        self._graph = graph
        self._owner = owner
        self._machine_id = machine_id
        self._owned = np.where(owner == machine_id)[0].astype(np.int64)
        self._owned_set = frozenset(int(v) for v in self._owned)
        self._border: np.ndarray | None = None
        self._border_distance: dict[int, int] | None = None

    # ------------------------------------------------------------------
    @property
    def machine_id(self) -> int:
        """Index of this machine."""
        return self._machine_id

    @property
    def graph(self) -> Graph:
        """The full data graph (used only through owned adjacency)."""
        return self._graph

    @property
    def owned_vertices(self) -> np.ndarray:
        """Sorted array of vertices owned here."""
        return self._owned

    def is_owned(self, v: int) -> bool:
        """True iff ``v`` resides on this machine."""
        return int(self._owner[v]) == self._machine_id

    def owner_of(self, v: int) -> int:
        """Ownership map lookup (available on every machine, Sec. 3.2)."""
        return int(self._owner[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Adjacency list of an *owned* vertex."""
        if not self.is_owned(v):
            raise KeyError(
                f"vertex {v} is foreign to machine {self._machine_id}"
            )
        return self._graph.neighbors(v)

    def degree(self, v: int) -> int:
        """Degree of an owned vertex."""
        if not self.is_owned(v):
            raise KeyError(
                f"vertex {v} is foreign to machine {self._machine_id}"
            )
        return self._graph.degree(v)

    # ------------------------------------------------------------------
    def can_verify_edge(self, u: int, v: int) -> bool:
        """True iff edge existence is decidable locally (an endpoint owned)."""
        return self.is_owned(u) or self.is_owned(v)

    def verify_edge(self, u: int, v: int) -> bool:
        """Local edge test (daemon `verifyE` handler uses this)."""
        if self.is_owned(u):
            return self._graph.has_edge(u, v)
        if self.is_owned(v):
            return self._graph.has_edge(v, u)
        raise KeyError(
            f"edge ({u},{v}) is undetermined on machine {self._machine_id}"
        )

    # ------------------------------------------------------------------
    @property
    def border_vertices(self) -> np.ndarray:
        """Owned vertices with at least one foreign neighbour (cached)."""
        if self._border is None:
            border = [
                int(v)
                for v in self._owned
                if (self._owner[self._graph.neighbors(v)] != self._machine_id).any()
            ]
            self._border = np.asarray(border, dtype=np.int64)
        return self._border

    def border_distance(self, v: int) -> int:
        """Paper Def. 1: hop distance from ``v`` to the nearest border vertex.

        Distances are measured inside the local partition (only hops across
        owned vertices).  Vertices in partitions with no border at all (a
        fully interior component) get a large sentinel distance.
        """
        if self._border_distance is None:
            self._border_distance = self._compute_border_distances()
        return self._border_distance.get(int(v), _FAR)

    def _compute_border_distances(self) -> dict[int, int]:
        dist: dict[int, int] = {}
        queue: deque[int] = deque()
        for v in self.border_vertices:
            dist[int(v)] = 0
            queue.append(int(v))
        while queue:
            v = queue.popleft()
            dv = dist[v] + 1
            for w in self._graph.neighbors(v):
                w = int(w)
                if int(self._owner[w]) == self._machine_id and w not in dist:
                    dist[w] = dv
                    queue.append(w)
        return dist

    def adjacency_bytes(self) -> int:
        """Bytes of adjacency data stored here (8 bytes per neighbour entry)."""
        degrees = self._graph.degrees()
        return int(degrees[self._owned].sum()) * 8


_FAR = 1 << 30


class GraphPartition:
    """A full partitioning ``{G_1 .. G_m}`` of a data graph."""

    def __init__(self, graph: Graph, owner: np.ndarray):
        owner = np.asarray(owner, dtype=np.int64)
        if len(owner) != graph.num_vertices:
            raise ValueError("owner array length mismatch")
        self._graph = graph
        self._owner = owner
        self._num_machines = int(owner.max()) + 1 if len(owner) else 0
        self._machines = [
            MachinePartition(graph, owner, t) for t in range(self._num_machines)
        ]

    @property
    def graph(self) -> Graph:
        """The underlying data graph."""
        return self._graph

    @property
    def num_machines(self) -> int:
        """Number of machines."""
        return self._num_machines

    @property
    def owner(self) -> np.ndarray:
        """The ownership map."""
        return self._owner

    def machine(self, t: int) -> MachinePartition:
        """The partition slice of machine ``t``."""
        return self._machines[t]

    def machines(self) -> list[MachinePartition]:
        """All machine slices."""
        return list(self._machines)

    def owner_of(self, v: int) -> int:
        """Machine owning vertex ``v``."""
        return int(self._owner[v])
