"""Graph partitioning and per-machine partition views (paper Sec. 2)."""

from repro.partition.partitioner import (
    HashPartitioner,
    Partitioner,
    edge_cut,
    partition_balance,
)
from repro.partition.metis_like import MetisLikePartitioner
from repro.partition.partition import GraphPartition, MachinePartition

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "MetisLikePartitioner",
    "GraphPartition",
    "MachinePartition",
    "edge_cut",
    "partition_balance",
]
