"""Multilevel k-way partitioner (METIS substitute).

The paper partitions each data graph with METIS' multilevel k-way algorithm.
METIS is not available offline, so this module implements the same scheme
from scratch:

1. **Coarsening** — repeated heavy-edge matching collapses the graph until
   it is small.
2. **Initial partitioning** — greedy BFS region growing over the coarsest
   graph, balanced by (coarse) vertex weight.
3. **Uncoarsening + refinement** — projected back level by level; boundary
   vertices are greedily moved to the neighbouring part with maximal gain
   subject to a balance constraint (a lightweight Kernighan-Lin/FM pass).

The goal is the contract RADS depends on: balanced parts with strong
locality, so that most vertices sit far from partition borders.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.graph import Graph
from repro.partition.partitioner import Partitioner


class _CoarseGraph:
    """Weighted graph used internally during coarsening."""

    def __init__(
        self,
        adjacency: list[dict[int, int]],
        vertex_weight: np.ndarray,
    ):
        self.adjacency = adjacency
        self.vertex_weight = vertex_weight

    @property
    def num_vertices(self) -> int:
        return len(self.adjacency)

    @classmethod
    def from_graph(cls, graph: Graph) -> "_CoarseGraph":
        adjacency = [
            {int(w): 1 for w in graph.neighbors(v)} for v in graph.vertices()
        ]
        return cls(adjacency, np.ones(graph.num_vertices, dtype=np.int64))


def _heavy_edge_matching(
    coarse: _CoarseGraph, rng: np.random.Generator
) -> tuple[_CoarseGraph, np.ndarray]:
    """One coarsening level; returns (coarser graph, fine->coarse map)."""
    n = coarse.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    visit_order = rng.permutation(n)
    for v in visit_order:
        v = int(v)
        if match[v] != -1:
            continue
        best, best_weight = -1, -1
        for w, weight in coarse.adjacency[v].items():
            if match[w] == -1 and weight > best_weight:
                best, best_weight = w, weight
        if best == -1:
            match[v] = v
        else:
            match[v] = best
            match[best] = v
    coarse_id = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if coarse_id[v] != -1:
            continue
        coarse_id[v] = next_id
        partner = int(match[v])
        if partner != v:
            coarse_id[partner] = next_id
        next_id += 1
    adjacency: list[dict[int, int]] = [dict() for _ in range(next_id)]
    weight = np.zeros(next_id, dtype=np.int64)
    for v in range(n):
        cv = int(coarse_id[v])
        weight[cv] += coarse.vertex_weight[v]
    counted = np.zeros(n, dtype=bool)
    for v in range(n):
        cv = int(coarse_id[v])
        for w, ew in coarse.adjacency[v].items():
            if counted[w]:
                continue
            cw = int(coarse_id[w])
            if cv == cw:
                continue
            adjacency[cv][cw] = adjacency[cv].get(cw, 0) + ew
            adjacency[cw][cv] = adjacency[cw].get(cv, 0) + ew
        counted[v] = True
    # Halve double counting (each edge seen from both endpoints once overall
    # due to the `counted` mask, so no halving needed).
    return _CoarseGraph(adjacency, weight), coarse_id


def _initial_partition(
    coarse: _CoarseGraph, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Greedy BFS region growing, balanced by vertex weight."""
    n = coarse.num_vertices
    total_weight = int(coarse.vertex_weight.sum())
    target = total_weight / k
    part = np.full(n, -1, dtype=np.int64)
    order = sorted(range(n), key=lambda v: -len(coarse.adjacency[v]))
    seeds: list[int] = []
    for v in order:
        if len(seeds) >= k:
            break
        if all(v not in coarse.adjacency[s] for s in seeds):
            seeds.append(v)
    while len(seeds) < k:
        candidates = [v for v in range(n) if v not in seeds]
        if not candidates:
            break
        seeds.append(int(rng.choice(candidates)))
    load = np.zeros(k, dtype=np.float64)
    queues: list[deque[int]] = [deque([s]) for s in seeds]
    for p, s in enumerate(seeds):
        part[s] = p
        load[p] += coarse.vertex_weight[s]
    active = True
    while active:
        active = False
        # Least-loaded part grows first to keep balance.
        for p in np.argsort(load):
            p = int(p)
            queue = queues[p]
            grew = False
            while queue and not grew:
                v = queue.popleft()
                for w in coarse.adjacency[v]:
                    if part[w] == -1:
                        part[w] = p
                        load[p] += coarse.vertex_weight[w]
                        queue.append(w)
                        grew = True
                        active = True
                        if load[p] > 1.15 * target:
                            break
                if grew:
                    queue.appendleft(v)
        if not active:
            remaining = np.where(part == -1)[0]
            if len(remaining) == 0:
                break
            # Unreached (disconnected) vertices go to the lightest part.
            for v in remaining:
                p = int(np.argmin(load))
                part[v] = p
                load[p] += coarse.vertex_weight[v]
                queues[p].append(int(v))
            break
    return part


def _refine(
    coarse: _CoarseGraph,
    part: np.ndarray,
    k: int,
    max_imbalance: float,
    passes: int,
) -> np.ndarray:
    """Greedy boundary refinement with a balance constraint."""
    load = np.zeros(k, dtype=np.float64)
    for v in range(coarse.num_vertices):
        load[part[v]] += coarse.vertex_weight[v]
    limit = max_imbalance * coarse.vertex_weight.sum() / k
    for _ in range(passes):
        moved = 0
        for v in range(coarse.num_vertices):
            here = int(part[v])
            weight_to: dict[int, int] = {}
            for w, ew in coarse.adjacency[v].items():
                pw = int(part[w])
                weight_to[pw] = weight_to.get(pw, 0) + ew
            internal = weight_to.get(here, 0)
            best_part, best_gain = here, 0
            for p, external in weight_to.items():
                if p == here:
                    continue
                gain = external - internal
                vw = coarse.vertex_weight[v]
                if gain > best_gain and load[p] + vw <= limit:
                    best_part, best_gain = p, gain
            if best_part != here:
                vw = coarse.vertex_weight[v]
                load[here] -= vw
                load[best_part] += vw
                part[v] = best_part
                moved += 1
        if moved == 0:
            break
    return part


class MetisLikePartitioner(Partitioner):
    """Multilevel k-way partitioner (coarsen / partition / refine)."""

    def __init__(
        self,
        coarsen_until: int = 200,
        max_levels: int = 12,
        refinement_passes: int = 4,
        max_imbalance: float = 1.1,
        seed: int = 0,
    ):
        self._coarsen_until = coarsen_until
        self._max_levels = max_levels
        self._refinement_passes = refinement_passes
        self._max_imbalance = max_imbalance
        self._seed = seed

    def assign(self, graph: Graph, num_machines: int) -> np.ndarray:
        if num_machines <= 0:
            raise ValueError("need at least one machine")
        if num_machines == 1:
            return np.zeros(graph.num_vertices, dtype=np.int64)
        rng = np.random.default_rng(self._seed)
        levels: list[tuple[_CoarseGraph, np.ndarray]] = []
        coarse = _CoarseGraph.from_graph(graph)
        threshold = max(self._coarsen_until, 8 * num_machines)
        while (
            coarse.num_vertices > threshold
            and len(levels) < self._max_levels
        ):
            coarser, mapping = _heavy_edge_matching(coarse, rng)
            if coarser.num_vertices >= coarse.num_vertices:
                break
            levels.append((coarse, mapping))
            coarse = coarser
        part = _initial_partition(coarse, num_machines, rng)
        part = _refine(
            coarse, part, num_machines, self._max_imbalance,
            self._refinement_passes,
        )
        # Uncoarsen, refining at every level.
        for finer, mapping in reversed(levels):
            part = part[mapping]
            part = _refine(
                finer, part, num_machines, self._max_imbalance,
                self._refinement_passes,
            )
        return part.astype(np.int64)
