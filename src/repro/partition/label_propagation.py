"""Label-propagation partitioner — a lighter-weight METIS alternative.

Size-constrained label propagation (Ugander & Backstrom style): every
vertex starts in a hash-assigned part and iteratively moves to the part
where most of its neighbours live, subject to a balance cap.  Cheaper than
the multilevel scheme and usually between hash and METIS-like in locality;
useful both as a mid-quality baseline and to study how partition quality
drives RADS' SM-E share.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.partition.partitioner import HashPartitioner, Partitioner


class LabelPropagationPartitioner(Partitioner):
    """Size-constrained label propagation over a hash seeding."""

    def __init__(
        self,
        iterations: int = 8,
        max_imbalance: float = 1.1,
        seed: int = 0,
    ):
        self._iterations = iterations
        self._max_imbalance = max_imbalance
        self._seed = seed

    def assign(self, graph: Graph, num_machines: int) -> np.ndarray:
        if num_machines <= 0:
            raise ValueError("need at least one machine")
        if num_machines == 1:
            return np.zeros(graph.num_vertices, dtype=np.int64)
        rng = np.random.default_rng(self._seed)
        part = HashPartitioner(self._seed).assign(graph, num_machines)
        counts = np.bincount(part, minlength=num_machines).astype(np.float64)
        limit = self._max_imbalance * graph.num_vertices / num_machines
        for _ in range(self._iterations):
            moved = 0
            order = rng.permutation(graph.num_vertices)
            for v in order:
                v = int(v)
                nbrs = graph.neighbors(v)
                if len(nbrs) == 0:
                    continue
                here = int(part[v])
                tallies = np.bincount(
                    part[nbrs], minlength=num_machines
                )
                best = here
                best_score = tallies[here]
                for p in np.argsort(tallies)[::-1]:
                    p = int(p)
                    if tallies[p] <= best_score:
                        break
                    if p != here and counts[p] + 1 <= limit:
                        best, best_score = p, tallies[p]
                        break
                if best != here:
                    part[v] = best
                    counts[here] -= 1
                    counts[best] += 1
                    moved += 1
            if moved == 0:
                break
        return part.astype(np.int64)
