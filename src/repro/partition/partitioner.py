"""Partitioner interface plus the trivial hash partitioner."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.graph.graph import Graph


class Partitioner(ABC):
    """Assigns every vertex of a data graph to one of ``m`` machines."""

    @abstractmethod
    def assign(self, graph: Graph, num_machines: int) -> np.ndarray:
        """Return an int array ``owner[v] in [0, num_machines)``."""


class HashPartitioner(Partitioner):
    """Pseudo-random assignment — the locality-free baseline.

    A multiplicative hash (not plain modulo) so that grid graphs do not end
    up with accidental stripe locality.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed

    def assign(self, graph: Graph, num_machines: int) -> np.ndarray:
        if num_machines <= 0:
            raise ValueError("need at least one machine")
        # splitmix64 finaliser: sequential ids land uniformly.
        z = np.arange(graph.num_vertices, dtype=np.uint64)
        z = z + np.uint64(self._seed) + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
        return (z % np.uint64(num_machines)).astype(np.int64)


def edge_cut(graph: Graph, owner: np.ndarray) -> int:
    """Number of edges whose endpoints live on different machines."""
    cut = 0
    for u, v in graph.edges():
        if owner[u] != owner[v]:
            cut += 1
    return cut


def partition_balance(owner: np.ndarray, num_machines: int) -> float:
    """Max part size over ideal part size (1.0 = perfectly balanced)."""
    counts = np.bincount(owner, minlength=num_machines)
    ideal = len(owner) / num_machines
    return float(counts.max() / ideal) if ideal else 1.0
