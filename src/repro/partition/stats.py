"""Partition quality reports, including the SM-E potential of Sec. 3.1.

Partition quality drives RADS more directly than any other engine: the
fraction of candidates whose border distance reaches the query span decides
how much work never touches the network.  This module quantifies that link
for a concrete (partition, query) pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.partition import GraphPartition
from repro.partition.partitioner import edge_cut, partition_balance
from repro.query.pattern import Pattern


@dataclass
class PartitionReport:
    """Structural quality measures of one partition."""

    num_machines: int
    balance: float
    edge_cut: int
    edge_cut_fraction: float
    border_fraction: float
    mean_border_distance: float

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"{self.num_machines} machines: balance {self.balance:.2f}, "
            f"edge cut {self.edge_cut} "
            f"({100 * self.edge_cut_fraction:.1f}% of edges), "
            f"{100 * self.border_fraction:.1f}% border vertices, "
            f"mean border distance {self.mean_border_distance:.2f}"
        )


def partition_report(partition: GraphPartition) -> PartitionReport:
    """Compute structural quality measures for a partition."""
    graph = partition.graph
    cut = edge_cut(graph, partition.owner)
    borders = 0
    distances: list[int] = []
    for t in range(partition.num_machines):
        machine = partition.machine(t)
        borders += len(machine.border_vertices)
        for v in machine.owned_vertices:
            d = machine.border_distance(int(v))
            if d < graph.num_vertices:
                distances.append(d)
    return PartitionReport(
        num_machines=partition.num_machines,
        balance=partition_balance(partition.owner, partition.num_machines),
        edge_cut=cut,
        edge_cut_fraction=cut / max(1, graph.num_edges),
        border_fraction=borders / max(1, graph.num_vertices),
        mean_border_distance=(
            float(np.mean(distances)) if distances else float("inf")
        ),
    )


def sme_share(partition: GraphPartition, pattern: Pattern) -> float:
    """Fraction of start candidates that SM-E can process (Prop. 1).

    Uses the pattern's minimum vertex span as the start-vertex span — the
    plan chooser's second heuristic picks exactly that vertex, so this is
    the share the best plan achieves.
    """
    span = min(pattern.span(u) for u in pattern.vertices())
    min_degree = min(pattern.degree(u) for u in pattern.vertices())
    local = 0
    total = 0
    for t in range(partition.num_machines):
        machine = partition.machine(t)
        for v in machine.owned_vertices:
            v = int(v)
            if machine.degree(v) < min_degree:
                continue
            total += 1
            if machine.border_distance(v) >= span:
                local += 1
    return local / total if total else 1.0
