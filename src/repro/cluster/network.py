"""Simulated network: message accounting and the RPC / shuffle primitives."""

from __future__ import annotations

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.machine import Machine


class Network:
    """Tracks every byte crossing machine boundaries.

    Two communication idioms cover all five engines:

    - :meth:`rpc` — the asynchronous request/response used by RADS
      (`fetchV`, `verifyE`): the *requester* blocks for the round trip; the
      responder's daemon thread absorbs the service cost without blocking
      the responder's main thread.
    - :meth:`shuffle` — the bulk-synchronous exchange used by the join-based
      engines and PSgL: all machines exchange intermediate results, then hit
      a barrier.
    """

    def __init__(self, num_machines: int, cost_model: CostModel):
        self._cost_model = cost_model
        self.bytes_sent = np.zeros((num_machines, num_machines), dtype=np.int64)
        self.messages = 0

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """All bytes that crossed machine boundaries."""
        return int(self.bytes_sent.sum())

    def machine_bytes(self, machine_id: int) -> int:
        """Bytes sent or received by one machine."""
        return int(
            self.bytes_sent[machine_id, :].sum()
            + self.bytes_sent[:, machine_id].sum()
        )

    def record(self, src: int, dst: int, nbytes: int) -> None:
        """Account a one-way payload."""
        self.bytes_sent[src, dst] += nbytes
        self.messages += 1

    # ------------------------------------------------------------------
    def rpc(
        self,
        requester: Machine,
        responder: Machine,
        request_bytes: int,
        response_bytes: int,
        service_ops: float = 0.0,
    ) -> None:
        """Blocking request/response served by the responder's daemon."""
        if requester.machine_id == responder.machine_id:
            requester.charge_ops(service_ops, "local_service_ops")
            return
        model = self._cost_model
        self.record(requester.machine_id, responder.machine_id, request_bytes)
        self.record(responder.machine_id, requester.machine_id, response_bytes)
        service_time = model.compute_time(service_ops) / responder.speed_factor
        requester.advance(
            model.message_time(request_bytes)
            + service_time
            + model.message_time(response_bytes)
        )
        responder.charge_daemon_ops(service_ops)

    def shuffle(
        self,
        machines: list[Machine],
        payload: np.ndarray,
        barrier: bool = True,
    ) -> None:
        """All-to-all exchange of ``payload[src, dst]`` bytes with a barrier.

        Each machine's send time is its outgoing volume; each machine then
        waits for its incoming volume; with ``barrier`` the slowest machine
        gates everyone (synchronisation delay).
        """
        model = self._cost_model
        n = len(machines)
        for src in range(n):
            for dst in range(n):
                if src != dst and payload[src, dst] > 0:
                    self.record(src, dst, int(payload[src, dst]))
        for i, machine in enumerate(machines):
            out_bytes = int(payload[i, :].sum() - payload[i, i])
            in_bytes = int(payload[:, i].sum() - payload[i, i])
            if out_bytes or in_bytes:
                machine.advance(
                    model.latency_s
                    + model.transfer_time(out_bytes)
                    + model.transfer_time(in_bytes)
                )
        if barrier:
            latest = max(m.clock for m in machines)
            for machine in machines:
                machine.clock = latest

    def broadcast(
        self, sender: Machine, receivers: list[Machine], nbytes: int
    ) -> None:
        """One-to-all message (used by checkR load-balancing probes)."""
        model = self._cost_model
        for receiver in receivers:
            if receiver.machine_id == sender.machine_id:
                continue
            self.record(sender.machine_id, receiver.machine_id, nbytes)
        sender.advance(model.message_time(nbytes * max(1, len(receivers) - 1)))
