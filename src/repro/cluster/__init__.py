"""Deterministic discrete-event simulation of a compute cluster.

This package substitutes for the paper's 10-node MPI cluster.  Machines have
virtual clocks; engines charge compute operations, message latency, transfer
bytes and memory allocations to them.  Synchronous engines use barriers
(reproducing synchronisation delay); RADS runs machines asynchronously with
daemon threads serving remote requests.
"""

from repro.cluster.costmodel import CostModel
from repro.cluster.machine import Machine, SimulatedMemoryError
from repro.cluster.network import Network
from repro.cluster.cluster import Cluster

__all__ = [
    "CostModel",
    "Machine",
    "SimulatedMemoryError",
    "Network",
    "Cluster",
]
