"""Cluster assembly: data graph + partition + machines + network."""

from __future__ import annotations

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.machine import Machine
from repro.cluster.network import Network
from repro.graph.graph import Graph
from repro.partition.partition import GraphPartition
from repro.partition.partitioner import Partitioner
from repro.partition.metis_like import MetisLikePartitioner


class Cluster:
    """A simulated cluster holding a partitioned data graph.

    Build one with :meth:`create`, hand it to any engine in
    :mod:`repro.engines` or :mod:`repro.core`, and read the stats back from
    ``machines`` / ``network`` afterwards.
    """

    def __init__(
        self,
        partition: GraphPartition,
        cost_model: CostModel,
        memory_capacity: int | None = None,
    ):
        self.partition = partition
        self.cost_model = cost_model
        self.memory_capacity = memory_capacity
        self.machines = [
            Machine(t, cost_model, memory_capacity)
            for t in range(partition.num_machines)
        ]
        self.network = Network(partition.num_machines, cost_model)

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        graph: Graph,
        num_machines: int,
        partitioner: Partitioner | None = None,
        cost_model: CostModel | None = None,
        memory_capacity: int | None = None,
    ) -> "Cluster":
        """Partition ``graph`` over ``num_machines`` and build the cluster."""
        partitioner = partitioner or MetisLikePartitioner()
        cost_model = cost_model or CostModel()
        owner = partitioner.assign(graph, num_machines)
        partition = GraphPartition(graph, owner)
        return cls(partition, cost_model, memory_capacity)

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The data graph."""
        return self.partition.graph

    @property
    def num_machines(self) -> int:
        """Cluster size."""
        return len(self.machines)

    def machine(self, t: int) -> Machine:
        """Machine ``t``."""
        return self.machines[t]

    def barrier(self) -> None:
        """Synchronise all main clocks to the slowest machine."""
        latest = max(m.clock for m in self.machines)
        for machine in self.machines:
            machine.clock = latest

    def makespan(self) -> float:
        """Completion time of the whole job."""
        return max(m.finish_time for m in self.machines) if self.machines else 0.0

    def total_comm_bytes(self) -> int:
        """All bytes exchanged so far."""
        return self.network.total_bytes

    def peak_memory(self) -> int:
        """Largest per-machine peak memory."""
        return max((m.peak_memory for m in self.machines), default=0)

    def reset(self) -> None:
        """Clear clocks/memory/network stats (reuse across experiments)."""
        for machine in self.machines:
            machine.reset()
        self.network = Network(self.num_machines, self.cost_model)

    def set_speed_factor(self, machine_id: int, factor: float) -> None:
        """Scale one machine's CPU rate (below 1 makes it a straggler)."""
        if factor <= 0:
            raise ValueError("speed factor must be positive")
        self.machines[machine_id].speed_factor = factor

    def fresh_copy(self) -> "Cluster":
        """A new cluster over the same partition with zeroed stats.

        Speed factors are hardware configuration, not run state, so they
        carry over to the copy.
        """
        copy = Cluster(self.partition, self.cost_model, self.memory_capacity)
        for mine, theirs in zip(self.machines, copy.machines):
            theirs.speed_factor = mine.speed_factor
        return copy

    def owner_counts(self) -> np.ndarray:
        """Vertices owned per machine."""
        return np.bincount(
            self.partition.owner, minlength=self.num_machines
        )
