"""Cost model converting algorithmic quantities into simulated seconds."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cluster cost parameters.

    Bandwidth and CPU throughput match the paper's testbed class (gigabit
    network, hundreds of millions of enumeration steps per second).  Since
    the benchmark graphs are ~1000x smaller than the paper's datasets and
    both transferred bytes and executed operations shrink with the data,
    these rates preserve the paper's compute:communication balance as-is.
    The *fixed* per-message cost does not shrink with the data, so the
    latency is kept MPI-small (2 us) to stay proportional to the shrunken
    per-machine work.  Absolute values only scale the reported numbers;
    the engine *comparisons* depend on the ratios.
    """

    latency_s: float = 2e-6
    bandwidth_bytes_per_s: float = 1.0e8
    cpu_ops_per_s: float = 2.0e8
    disk_bandwidth_bytes_per_s: float = 1.0e8
    bytes_per_vertex_id: int = 8
    request_overhead_bytes: int = 64

    def compute_time(self, ops: float) -> float:
        """Seconds to execute ``ops`` elementary enumeration operations."""
        return ops / self.cpu_ops_per_s

    def transfer_time(self, nbytes: float) -> float:
        """Seconds on the wire for a payload (excluding latency)."""
        return nbytes / self.bandwidth_bytes_per_s

    def message_time(self, nbytes: float) -> float:
        """Latency plus transfer for one message."""
        return self.latency_s + self.transfer_time(
            nbytes + self.request_overhead_bytes
        )

    def disk_time(self, nbytes: float) -> float:
        """Seconds to stream ``nbytes`` from local disk (index loads)."""
        return nbytes / self.disk_bandwidth_bytes_per_s

    def embedding_bytes(self, num_query_vertices: int) -> int:
        """Serialized size of one (partial) embedding."""
        return num_query_vertices * self.bytes_per_vertex_id

    def adjacency_bytes(self, degree: int) -> int:
        """Serialized size of one adjacency list (id + neighbours)."""
        return (degree + 1) * self.bytes_per_vertex_id
