"""Simulated machine: virtual clock, operation counters, memory accounting."""

from __future__ import annotations

from collections import Counter

from repro.cluster.costmodel import CostModel


class SimulatedMemoryError(RuntimeError):
    """Raised when an engine exceeds a machine's simulated memory capacity.

    Mirrors the paper's out-of-memory failures (empty bars in Figs. 8-11).
    """

    def __init__(self, machine_id: int, requested: int, used: int, capacity: int):
        super().__init__(
            f"machine {machine_id}: OOM allocating {requested} B "
            f"(used {used} of {capacity} B)"
        )
        self.machine_id = machine_id
        self.requested = requested
        self.used = used
        self.capacity = capacity

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the message) into
        # ``__init__``, which expects the four fields; rebuild explicitly so
        # the error crosses process boundaries intact.
        return (
            SimulatedMemoryError,
            (self.machine_id, self.requested, self.used, self.capacity),
        )


class Machine:
    """One simulated cluster node.

    ``clock`` is the main enumeration thread; ``daemon_clock`` tracks the
    daemon thread that serves remote `fetchV`/`verifyE` requests (RADS
    overlaps daemon service with local work, so the two are separate).

    ``speed_factor`` scales the CPU rate of this machine relative to the
    cost model's baseline; values below 1 make it a *straggler*.  The
    paper motivates asynchrony with exactly this: in synchronous systems
    "the machines must wait for each other [...], making the overall
    performance equivalent to that of the slowest machine".
    """

    def __init__(
        self,
        machine_id: int,
        cost_model: CostModel,
        memory_capacity: int | None = None,
        speed_factor: float = 1.0,
    ):
        if speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        self.machine_id = machine_id
        self.cost_model = cost_model
        self.memory_capacity = memory_capacity
        self.speed_factor = speed_factor
        self.clock = 0.0
        self.daemon_clock = 0.0
        self.memory_used = 0
        self.peak_memory = 0
        self.counters: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def charge_ops(self, ops: float, counter: str = "ops") -> None:
        """Advance the main clock by ``ops`` units of compute."""
        self.clock += self.cost_model.compute_time(ops) / self.speed_factor
        self.counters[counter] += int(ops)

    def charge_daemon_ops(self, ops: float, counter: str = "daemon_ops") -> None:
        """Advance the daemon clock (overlapped with the main thread)."""
        self.daemon_clock += (
            self.cost_model.compute_time(ops) / self.speed_factor
        )
        self.counters[counter] += int(ops)

    def advance(self, seconds: float) -> None:
        """Advance the main clock by wall time (waits, transfers)."""
        self.clock += seconds

    @property
    def finish_time(self) -> float:
        """Completion time: main and daemon threads both must finish."""
        return max(self.clock, self.daemon_clock)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def allocate(self, nbytes: int, counter: str = "alloc_bytes") -> None:
        """Claim simulated memory; raises SimulatedMemoryError over capacity."""
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        if (
            self.memory_capacity is not None
            and self.memory_used + nbytes > self.memory_capacity
        ):
            raise SimulatedMemoryError(
                self.machine_id, nbytes, self.memory_used, self.memory_capacity
            )
        self.memory_used += nbytes
        self.peak_memory = max(self.peak_memory, self.memory_used)
        self.counters[counter] += nbytes

    def free(self, nbytes: int) -> None:
        """Release simulated memory."""
        self.memory_used = max(0, self.memory_used - nbytes)

    def reset(self) -> None:
        """Zero clocks, memory and counters (new experiment)."""
        self.clock = 0.0
        self.daemon_clock = 0.0
        self.memory_used = 0
        self.peak_memory = 0
        self.counters.clear()
