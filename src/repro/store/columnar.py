"""Columnar embedding-trie layout: the Def. 11 trie as NumPy arrays.

:class:`TrieColumns` flattens a collected result set into the paper's
embedding trie (Sec. 5) and stores it column-wise: level ``j`` keeps one
``int64`` entry per *distinct* length-``j+1`` prefix — its data vertex in
``values[j]`` and the index of its parent (a level ``j-1`` node) in
``parents[j]``.  That is exactly the (vertex, parent-pointer) pair of
Def. 11 with the child count implied by the parent array, so
``node_count`` matches :func:`~repro.core.embedding_trie.trie_nodes_for_results`
and the Tables 3-4 ``NODE_BYTES`` accounting carries over unchanged.

The layout doubles as an index.  Leaves are kept in lexicographic order
of their embedding tuples (the *sorted leaf order*), which makes every
trie node own a **contiguous** leaf range: all embeddings sharing a
prefix are adjacent once sorted.  From the parent arrays alone we derive
``leaf_begin``/``leaf_end`` per node, and per-level value orderings give
inverted postings.  Every serve-side operation is then a range scan:

- ``page(offset, limit)`` — decompress one contiguous leaf slice by
  chasing parent pointers with vectorized gathers (no full scan);
- ``lookup(v)`` — per-level binary search for nodes matching ``v``,
  union of their (disjoint — embeddings are injective) leaf ranges;
- ``aggregate`` — group sizes read off node ranges without touching
  leaves at all.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.embedding_trie import (
    NODE_BYTES,
    EmbeddingTrie,
    TrieNode,
    trie_from_paths,
)

__all__ = ["TrieColumns"]

#: Allowed ``group_by`` modes for :meth:`TrieColumns.aggregate`.
AGGREGATE_MODES = ("root", "vertex", "orbit")


class TrieColumns:
    """A result set flattened to per-level vertex + parent columns.

    Construct with :meth:`from_embeddings` (sorts and deduplicates) or
    :meth:`from_arrays` (trusted columns, e.g. loaded from disk).  The
    embedding tuples themselves are never materialized except by the
    explicit ``decompress_*`` calls.
    """

    def __init__(
        self,
        values: "list[np.ndarray]",
        parents: "list[np.ndarray]",
    ):
        if len(values) != len(parents):
            raise ValueError("values/parents level count mismatch")
        if not values:
            raise ValueError("at least one level required")
        self.values = values
        self.parents = parents
        self.depth = len(values)
        #: Leaves are the deepest level's nodes; embeddings are unique,
        #: so leaf count == node count at the last level.
        self.leaf_count = int(values[-1].shape[0])
        self._build_ranges()
        self._postings: "list[np.ndarray] | None" = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_embeddings(
        cls, embeddings: Sequence[tuple[int, ...]], num_vertices: int
    ) -> "TrieColumns":
        """Flatten ``embeddings`` (tuples of ``num_vertices`` data
        vertices) into sorted columnar form.  Duplicates collapse, order
        is discarded: the canonical leaf order is lexicographic."""
        if num_vertices < 1:
            raise ValueError("num_vertices must be >= 1")
        rows = np.asarray(list(embeddings), dtype=np.int64)
        if rows.size == 0:
            rows = rows.reshape(0, num_vertices)
        if rows.ndim != 2 or rows.shape[1] != num_vertices:
            raise ValueError(
                f"embeddings must be {num_vertices}-tuples, "
                f"got array shape {rows.shape}"
            )
        # np.unique(axis=0) both sorts lexicographically and drops
        # duplicate rows — the two invariants the layout needs.
        rows = np.unique(rows, axis=0)
        n = rows.shape[0]
        values: list[np.ndarray] = []
        parents: list[np.ndarray] = []
        # node_of[i] = index (at the current level) of the node owning
        # sorted leaf i; level j nodes are the distinct (j+1)-prefixes.
        prev_node_of = np.zeros(n, dtype=np.int64)
        for level in range(num_vertices):
            prefix = rows[:, : level + 1]
            if n == 0:
                starts = np.zeros(0, dtype=np.int64)
                node_of = np.zeros(0, dtype=np.int64)
            else:
                new = np.ones(n, dtype=bool)
                new[1:] = np.any(prefix[1:] != prefix[:-1], axis=1)
                node_of = np.cumsum(new, dtype=np.int64) - 1
                starts = np.flatnonzero(new)
            values.append(np.ascontiguousarray(rows[starts, level]))
            if level == 0:
                parents.append(np.zeros(len(starts), dtype=np.int64))
            else:
                parents.append(np.ascontiguousarray(prev_node_of[starts]))
            prev_node_of = node_of
        return cls(values, parents)

    @classmethod
    def from_arrays(
        cls,
        values: "Iterable[np.ndarray]",
        parents: "Iterable[np.ndarray]",
    ) -> "TrieColumns":
        """Rebuild from persisted columns (validates shapes/monotonicity)."""
        values = [np.asarray(v, dtype=np.int64) for v in values]
        parents = [np.asarray(p, dtype=np.int64) for p in parents]
        if len(values) != len(parents):
            raise ValueError("values/parents level count mismatch")
        for level, (vals, pars) in enumerate(zip(values, parents)):
            if vals.shape != pars.shape or vals.ndim != 1:
                raise ValueError(f"level {level}: malformed columns")
            if level == 0:
                if pars.size and (pars != 0).any():
                    raise ValueError("level 0 nodes must have parent 0")
            else:
                if pars.size and (
                    (np.diff(pars) < 0).any()
                    or pars[0] != 0
                    or pars[-1] != len(values[level - 1]) - 1
                ):
                    raise ValueError(
                        f"level {level}: parent pointers must be "
                        f"nondecreasing and cover the parent level"
                    )
        return cls(values, parents)

    # -- derived indexes ------------------------------------------------
    def _build_ranges(self) -> None:
        """Per-node contiguous leaf ranges, bottom-up from parents."""
        n = self.leaf_count
        self.leaf_begin: list[np.ndarray] = [None] * self.depth  # type: ignore[list-item]
        self.leaf_end: list[np.ndarray] = [None] * self.depth  # type: ignore[list-item]
        self.leaf_begin[-1] = np.arange(n, dtype=np.int64)
        self.leaf_end[-1] = np.arange(1, n + 1, dtype=np.int64)
        for level in range(self.depth - 2, -1, -1):
            node_ids = np.arange(len(self.values[level]), dtype=np.int64)
            child_parents = self.parents[level + 1]
            first = np.searchsorted(child_parents, node_ids, side="left")
            last = np.searchsorted(child_parents, node_ids, side="right")
            self.leaf_begin[level] = self.leaf_begin[level + 1][first]
            # last child's end; every node has >= 1 child by construction
            self.leaf_end[level] = self.leaf_end[level + 1][last - 1]

    def _level_postings(self) -> "list[np.ndarray]":
        """Per-level stable argsort of node values (inverted postings)."""
        if self._postings is None:
            self._postings = [
                np.argsort(vals, kind="stable") for vals in self.values
            ]
        return self._postings

    # -- accounting -----------------------------------------------------
    @property
    def node_count(self) -> int:
        """Total trie nodes — equals ``trie_nodes_for_results``."""
        return sum(int(v.shape[0]) for v in self.values)

    def memory_bytes(self) -> int:
        """Simulated Def. 11 footprint (Tables 3-4 accounting)."""
        return self.node_count * NODE_BYTES

    def nbytes(self) -> int:
        """Actual bytes held by the columns."""
        return sum(v.nbytes + p.nbytes for v, p in zip(self.values, self.parents))

    # -- decompression --------------------------------------------------
    def decompress_leaves(self, leaf_ids: np.ndarray) -> "list[tuple[int, ...]]":
        """Embedding tuples for the given sorted-leaf indices (any order)."""
        leaf_ids = np.asarray(leaf_ids, dtype=np.int64)
        out = np.empty((leaf_ids.shape[0], self.depth), dtype=np.int64)
        node = leaf_ids
        for level in range(self.depth - 1, -1, -1):
            out[:, level] = self.values[level][node]
            node = self.parents[level][node]
        return [tuple(int(x) for x in row) for row in out]

    def decompress_range(self, offset: int, limit: "int | None" = None):
        """One contiguous page of the sorted leaf order."""
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        stop = self.leaf_count if limit is None else min(
            self.leaf_count, offset + limit
        )
        return self.decompress_leaves(
            np.arange(min(offset, stop), stop, dtype=np.int64)
        )

    def decompress_all(self) -> "list[tuple[int, ...]]":
        """The full result set in sorted leaf order."""
        return self.decompress_range(0)

    # -- index scans ----------------------------------------------------
    def _ranges_for_vertex(self, level: int, vertex: int):
        """(begin, end) leaf-range arrays of level nodes matching vertex."""
        order = self._level_postings()[level]
        vals = self.values[level][order]
        lo = int(np.searchsorted(vals, vertex, side="left"))
        hi = int(np.searchsorted(vals, vertex, side="right"))
        nodes = order[lo:hi]
        return self.leaf_begin[level][nodes], self.leaf_end[level][nodes]

    def lookup_leaves(self, vertex: int) -> np.ndarray:
        """Sorted leaf ids of embeddings containing data vertex ``vertex``.

        Embeddings are injective (subgraph isomorphism), so a vertex
        appears at most once per embedding and per-level node ranges are
        pairwise disjoint — the union is a plain concatenation.
        """
        pieces: list[np.ndarray] = []
        for level in range(self.depth):
            begins, ends = self._ranges_for_vertex(level, vertex)
            for b, e in zip(begins.tolist(), ends.tolist()):
                pieces.append(np.arange(b, e, dtype=np.int64))
        if not pieces:
            return np.zeros(0, dtype=np.int64)
        leaves = np.concatenate(pieces)
        leaves.sort()
        return leaves

    def lookup(self, vertex: int) -> "list[tuple[int, ...]]":
        """Embeddings containing ``vertex``, in sorted leaf order."""
        return self.decompress_leaves(self.lookup_leaves(int(vertex)))

    def contain_count(self, vertex: int) -> int:
        """How many embeddings contain ``vertex`` (index ranges only)."""
        total = 0
        for level in range(self.depth):
            begins, ends = self._ranges_for_vertex(level, int(vertex))
            total += int((ends - begins).sum())
        return total

    def aggregate(
        self, group_by: str, *, orbits: "Sequence[Sequence[int]] | None" = None
    ) -> "dict[str, int] | dict[str, dict[str, int]]":
        """Group counts as an index scan (leaves are never decompressed).

        - ``"root"``: embeddings per first-query-vertex match — the
          level-0 node leaf-range sizes.
        - ``"vertex"``: embeddings containing each data vertex, summed
          over per-level node ranges (injectivity makes this exact).
        - ``"orbit"``: per automorphism orbit of query-vertex positions
          (pass ``orbits``), the per-data-vertex containment count within
          that orbit's levels.

        Keys are strings (JSON object keys on the wire).
        """
        if group_by == "root":
            sizes = self.leaf_end[0] - self.leaf_begin[0]
            return {
                str(int(v)): int(c)
                for v, c in zip(self.values[0], sizes)
            }
        if group_by == "vertex":
            return self._vertex_counts(range(self.depth))
        if group_by == "orbit":
            if orbits is None:
                raise ValueError("group_by='orbit' needs the orbit partition")
            return {
                ",".join(str(p) for p in sorted(orbit)): self._vertex_counts(
                    sorted(orbit)
                )
                for orbit in orbits
            }
        raise ValueError(
            f"unknown group_by {group_by!r}; choose from "
            f"{', '.join(AGGREGATE_MODES)}"
        )

    def _vertex_counts(self, levels: Iterable[int]) -> "dict[str, int]":
        """Sum node leaf-range sizes per data vertex over ``levels``."""
        chunks_v: list[np.ndarray] = []
        chunks_c: list[np.ndarray] = []
        for level in levels:
            chunks_v.append(self.values[level])
            chunks_c.append(self.leaf_end[level] - self.leaf_begin[level])
        if not chunks_v:
            return {}
        vertices = np.concatenate(chunks_v)
        counts = np.concatenate(chunks_c)
        uniq, inverse = np.unique(vertices, return_inverse=True)
        sums = np.bincount(inverse, weights=counts, minlength=len(uniq))
        return {
            str(int(v)): int(c) for v, c in zip(uniq, sums) if int(c) != 0
        }

    # -- trie round trip ------------------------------------------------
    def to_trie(self) -> "tuple[EmbeddingTrie, list[TrieNode]]":
        """Rebuild a linked :class:`EmbeddingTrie` (plus its leaves)."""
        return trie_from_paths(self.decompress_all())

    def __len__(self) -> int:
        return self.leaf_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrieColumns(depth={self.depth}, leaves={self.leaf_count}, "
            f"nodes={self.node_count})"
        )
