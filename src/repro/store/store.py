"""Persistent, indexed embedding store (trie-compressed result sets).

:class:`EmbeddingStore` persists one :class:`~repro.store.columnar.TrieColumns`
per stored run as a NumPy ``.npz`` archive — per-level vertex columns and
parent-pointer arrays (the paper's Def. 11 trie, flattened) plus a JSON
metadata record.  Files are written atomically (tmp + ``os.replace``, the
PR 6 disk-cache idiom), format-versioned, and keyed by the PR 4 cache
key, so an isomorphic rewrite of a stored query hits the same set and is
served through an explicit isomorphism remap.

Filenames are ``<fingerprint16>_<key-digest>.npz``: the leading graph
fingerprint prefix lets :meth:`EmbeddingStore.evict_graph` drop every
set of a superseded snapshot without opening a single file (the
streaming rebind path), while the digest names the exact key, which the
file body repeats for verification on reload.

The store is the *serve* tier for ``collect="store"`` runs: ``page`` /
``lookup`` / ``aggregate`` answer from the columnar indexes without
decompressing the full set, and a fresh store over the same directory
serves identical pages after a restart.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.engines.base import RunResult
from repro.query.isomorphism import find_isomorphism
from repro.query.pattern import Pattern
from repro.service.cache import (
    _key_record,
    copy_result,
    key_digest,
    remap_embeddings,
)
from repro.store.columnar import AGGREGATE_MODES, TrieColumns

__all__ = ["EmbeddingStore", "StoredSet", "STORE_FORMAT"]

#: Version tag written into every stored set; bumped on layout changes
#: (a mismatching file is treated as a miss, never misread).
STORE_FORMAT = 1

#: Counter merged into served ``RunResult.counters`` on a store hit.
#: The scheduler spells out its own copy (importing either way would be
#: circular at import time); keep the two literals in lockstep.
STORE_HIT_COUNTER = "service.store_hit"

#: Filename prefix length taken from the graph fingerprint (hex chars).
_FP_PREFIX = 16


@dataclass
class StoredSet:
    """One persisted result set: key, executed pattern, columns, run."""

    key: tuple
    pattern: Pattern
    columns: TrieColumns
    #: The stored run with ``embeddings`` stripped (counts/timings only);
    #: always served as a copy.
    result: RunResult
    stored_at: float


def pattern_orbits(pattern: Pattern) -> "list[tuple[int, ...]]":
    """Automorphism orbits of the pattern's query-vertex positions.

    Positions in one orbit are structurally interchangeable (e.g. the
    two path endpoints of ``q2``), so per-orbit aggregates are the
    finest grouping that is invariant under query rewrites.
    """
    n = pattern.num_vertices
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for perm in pattern.automorphism_group():
        for u, v in enumerate(perm):
            ru, rv = find(u), find(int(v))
            if ru != rv:
                parent[ru] = rv
    groups: dict[int, list[int]] = {}
    for u in range(n):
        groups.setdefault(find(u), []).append(u)
    return sorted(tuple(sorted(g)) for g in groups.values())


class EmbeddingStore:
    """Directory of trie-compressed result sets with index-scan serving.

    ``capacity`` bounds how many *parsed* sets stay in memory (LRU); the
    directory itself is unbounded — stored sets are the product being
    persisted, not a cache.  ``wall_clock`` stamps ``stored_at`` and is
    injectable for tests.  All methods are thread-safe.
    """

    def __init__(
        self,
        store_dir: "str | Path",
        *,
        capacity: int = 8,
        wall_clock: Callable[[], float] = time.time,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.store_dir = Path(store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.capacity = capacity
        self._wall = wall_clock
        self._lock = threading.RLock()
        #: key digest -> on-disk path (filenames carry the fingerprint
        #: prefix, so eviction by graph never opens a file).
        self._index: dict[str, Path] = {}
        #: digest -> parsed StoredSet, LRU-bounded by ``capacity``.
        self._loaded: "OrderedDict[str, StoredSet]" = OrderedDict()
        self.writes = 0
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.invalidations = 0
        self.pages = 0
        self.lookups = 0
        self.aggregates = 0
        self._scan()

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    # -- directory layout ----------------------------------------------
    def _path_for(self, key: tuple) -> Path:
        return self.store_dir / f"{key[0][:_FP_PREFIX]}_{key_digest(key)}.npz"

    def _scan(self) -> None:
        """Index existing set files (restart path); bodies load lazily."""
        with self._lock:
            for path in sorted(self.store_dir.glob("*.npz")):
                name = path.stem
                if "_" in name:
                    self._index[name.split("_", 1)[1]] = path

    # -- persistence ----------------------------------------------------
    def put(self, key: tuple, pattern: Pattern, result: RunResult) -> StoredSet:
        """Persist one collected run's embeddings under ``key``.

        ``result.embeddings`` must hold the full enumeration; the stored
        record keeps the run's counts/timings with embeddings stripped
        (they live in the columns).  Failed runs are not storable.
        """
        if result.failed:
            raise ValueError("cannot store a failed run")
        if result.embeddings is None:
            raise ValueError(
                "cannot store a result without collected embeddings; "
                "run with collect_embeddings=True"
            )
        columns = TrieColumns.from_embeddings(
            result.embeddings, pattern.num_vertices
        )
        stripped = copy_result(result)
        stripped.embeddings = None
        stored_at = float(self._wall())
        meta = {
            "format": STORE_FORMAT,
            "key": _key_record(key),
            "pattern": str(pattern),
            "pattern_name": pattern.name,
            "num_vertices": pattern.num_vertices,
            "leaf_count": columns.leaf_count,
            "stored_at": stored_at,
            "result": stripped.to_dict(),
        }
        arrays: dict[str, np.ndarray] = {
            "meta": np.asarray(json.dumps(meta, sort_keys=True)),
        }
        for level in range(columns.depth):
            arrays[f"level{level}_values"] = columns.values[level]
            arrays[f"level{level}_parents"] = columns.parents[level]
        path = self._path_for(key)
        tmp = path.with_suffix(".tmp")
        with self._lock:
            try:
                with open(tmp, "wb") as handle:
                    np.savez(handle, **arrays)
                os.replace(tmp, path)
            except OSError:
                self.errors += 1
                raise
            stored = StoredSet(
                key=key,
                pattern=pattern,
                columns=columns,
                result=stripped,
                stored_at=stored_at,
            )
            self._index[key_digest(key)] = path
            self._remember(key_digest(key), stored)
            self.writes += 1
            return stored

    def get(self, key: tuple) -> "StoredSet | None":
        """The stored set for ``key`` (loaded-LRU first, then disk)."""
        digest = key_digest(key)
        with self._lock:
            stored = self._loaded.get(digest)
            if stored is not None:
                self._loaded.move_to_end(digest)
                self.hits += 1
                return stored
            path = self._index.get(digest)
            if path is None:
                self.misses += 1
                return None
            stored = self._load(key, digest, path)
            if stored is None:
                self.misses += 1
                return None
            self._remember(digest, stored)
            self.hits += 1
            return stored

    def has(self, key: tuple) -> bool:
        """Whether ``key`` names a stored set (no load, no counters)."""
        with self._lock:
            return key_digest(key) in self._index

    def _remember(self, digest: str, stored: StoredSet) -> None:
        self._loaded.pop(digest, None)
        self._loaded[digest] = stored
        while len(self._loaded) > self.capacity:
            self._loaded.popitem(last=False)

    def _load(self, key: tuple, digest: str, path: Path) -> "StoredSet | None":
        """Verified reload of one set file, or None (file dropped)."""
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(archive["meta"][()]))
                depth = int(meta["num_vertices"])
                values = [archive[f"level{j}_values"] for j in range(depth)]
                parents = [archive[f"level{j}_parents"] for j in range(depth)]
        except Exception:
            self._drop(digest, path)
            return None
        # Key-verified reload (PR 6 idiom): the body must repeat the
        # exact key, not merely sit at the right filename.
        if (
            not isinstance(meta, dict)
            or meta.get("format") != STORE_FORMAT
            or meta.get("key") != _key_record(key)
        ):
            self._drop(digest, path)
            return None
        try:
            from repro.api.session import resolve_query

            pattern = resolve_query(meta["pattern"]).copy_with_name(
                meta.get("pattern_name")
            )
            columns = TrieColumns.from_arrays(values, parents)
            result = RunResult.from_dict(meta["result"])
        except Exception:
            self._drop(digest, path)
            return None
        return StoredSet(
            key=key,
            pattern=pattern,
            columns=columns,
            result=result,
            stored_at=float(meta.get("stored_at", 0.0)),
        )

    def _drop(self, digest: str, path: Path) -> None:
        self._index.pop(digest, None)
        self._loaded.pop(digest, None)
        try:
            path.unlink()
        except OSError:
            pass
        self.errors += 1

    def evict_graph(self, fingerprint: str) -> int:
        """Unlink every set stored for one graph fingerprint.

        The streaming-rebind invalidation (mirrors
        :meth:`~repro.service.cache.ResultCache.evict_graph`): filenames
        lead with the fingerprint prefix, so no file is opened.  Returns
        the number of sets dropped, counted as ``invalidations``.
        """
        prefix = f"{fingerprint[:_FP_PREFIX]}_"
        with self._lock:
            dead = [
                (digest, path)
                for digest, path in self._index.items()
                if path.name.startswith(prefix)
            ]
            for digest, path in dead:
                self._index.pop(digest, None)
                self._loaded.pop(digest, None)
                try:
                    path.unlink()
                except OSError:
                    pass
            self.invalidations += len(dead)
            return len(dead)

    # -- serving --------------------------------------------------------
    def result_for(self, key: tuple, pattern: Pattern) -> "RunResult | None":
        """The stored run served for ``pattern`` (embeddings stay in the
        store; the copy carries counts/timings and the store-hit counter).
        """
        stored = self.get(key)
        if stored is None:
            return None
        served = copy_result(stored.result)
        served.pattern_name = pattern.name
        served.counters[STORE_HIT_COUNTER] = 1
        return served

    def _remap(
        self,
        stored: StoredSet,
        pattern: Pattern,
        rows: "list[tuple[int, ...]]",
    ) -> "list[tuple[int, ...]]":
        return remap_embeddings(rows, stored.pattern, pattern)

    def _mapping(self, stored: StoredSet, pattern: Pattern) -> "list[int]":
        """requested-position -> stored-level mapping (identity if equal)."""
        if stored.pattern == pattern:
            return list(range(pattern.num_vertices))
        mapping = find_isomorphism(pattern, stored.pattern)
        if mapping is None:
            raise ValueError(
                f"stored set for {stored.pattern.name!r} is not "
                f"isomorphic to requested {pattern.name!r}"
            )
        return [mapping[u] for u in range(pattern.num_vertices)]

    def page(
        self,
        key: tuple,
        pattern: Pattern,
        *,
        limit: int,
        offset: int = 0,
    ) -> "dict[str, Any] | None":
        """One contiguous page of the sorted leaf order, remapped to
        ``pattern``; ``None`` when ``key`` has no stored set."""
        stored = self.get(key)
        if stored is None:
            return None
        rows = stored.columns.decompress_range(offset, limit)
        with self._lock:
            self.pages += 1
        return {
            "embeddings": self._remap(stored, pattern, rows),
            "total": stored.columns.leaf_count,
            "offset": offset,
            "limit": limit,
        }

    def lookup(
        self, key: tuple, pattern: Pattern, vertex: int
    ) -> "dict[str, Any] | None":
        """Embeddings containing data vertex ``vertex`` (postings scan)."""
        stored = self.get(key)
        if stored is None:
            return None
        rows = stored.columns.lookup(int(vertex))
        with self._lock:
            self.lookups += 1
        return {
            "embeddings": self._remap(stored, pattern, rows),
            "count": len(rows),
            "total": stored.columns.leaf_count,
            "vertex": int(vertex),
        }

    def aggregate(
        self, key: tuple, pattern: Pattern, group_by: str
    ) -> "dict[str, Any] | None":
        """Group counts from the node ranges (leaves never decompressed).

        ``group_by`` is ``"root"`` (per first-*requested*-vertex match),
        ``"vertex"`` (per contained data vertex) or ``"orbit"`` (per
        automorphism orbit of the requested pattern's positions).  For
        isomorphic rewrites, requested positions are translated to
        stored trie levels through the isomorphism, so the answer is
        always in the caller's frame.
        """
        stored = self.get(key)
        if stored is None:
            return None
        if group_by == "root":
            level = self._mapping(stored, pattern)[0]
            groups: Any = stored.columns._vertex_counts([level])
        elif group_by == "vertex":
            groups = stored.columns.aggregate("vertex")
        elif group_by == "orbit":
            mapping = self._mapping(stored, pattern)
            groups = {
                ",".join(str(p) for p in orbit): stored.columns._vertex_counts(
                    sorted(mapping[p] for p in orbit)
                )
                for orbit in pattern_orbits(pattern)
            }
        else:
            raise ValueError(
                f"unknown group_by {group_by!r}; choose from "
                f"{', '.join(AGGREGATE_MODES)}"
            )
        with self._lock:
            self.aggregates += 1
        return {
            "group_by": group_by,
            "total": stored.columns.leaf_count,
            "groups": groups,
        }

    # -- introspection --------------------------------------------------
    def keys(self) -> "list[tuple]":
        """Keys of every *loaded* set (disk-only sets are digest-indexed
        and expose no key until loaded)."""
        with self._lock:
            return [stored.key for stored in self._loaded.values()]

    def stats(self) -> "dict[str, Any]":
        """Counter snapshot (JSON-safe), including on-disk set count."""
        with self._lock:
            return {
                "dir": str(self.store_dir),
                "sets": len(self._index),
                "loaded": len(self._loaded),
                "capacity": self.capacity,
                "writes": self.writes,
                "hits": self.hits,
                "misses": self.misses,
                "errors": self.errors,
                "invalidations": self.invalidations,
                "pages": self.pages,
                "lookups": self.lookups,
                "aggregates": self.aggregates,
            }
