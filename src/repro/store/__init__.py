"""Persistent, indexed embedding store (the PR 8 subsystem).

Collected result sets outlive the run that produced them: the paper's
Sec. 5 embedding trie, flattened to per-level NumPy columns
(:class:`~repro.store.columnar.TrieColumns`), persisted atomically and
keyed by the service cache key (:class:`~repro.store.store.EmbeddingStore`),
with ``page`` / ``lookup`` / ``aggregate`` served as index range scans.
"""

from repro.store.columnar import TrieColumns
from repro.store.store import (
    STORE_FORMAT,
    STORE_HIT_COUNTER,
    EmbeddingStore,
    StoredSet,
    pattern_orbits,
)

__all__ = [
    "STORE_FORMAT",
    "STORE_HIT_COUNTER",
    "EmbeddingStore",
    "StoredSet",
    "TrieColumns",
    "pattern_orbits",
]
