"""The ``DeltaRecord`` JSONL kind for ingest/delta streams.

Run results and explanations already replay through
:func:`repro.api.results.read_records_jsonl`; delta streams get the same
treatment so a subscriber's log (or the server request log) is a durable,
replayable account of what fired when.  Records carry an explicit
``"kind": "delta"`` tag — the other two kinds are recognised by their
schema, but a delta's payload is open-ended enough that an explicit tag
is the honest discriminator.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DeltaRecord:
    """Delta embeddings one watch observed for one ingest batch.

    ``added``/``removed`` hold the embedding tuples when the watch was
    registered with ``collect=True``, else ``None`` (counts are always
    present).  ``pattern`` is the edge-list DSL text, so a replayed
    record can be resolved back to the exact pattern with
    :func:`repro.api.session.resolve_query`.
    """

    pattern_name: str
    pattern: str
    version: int
    graph_fingerprint: str
    added_count: int
    removed_count: int
    added: list[tuple[int, ...]] | None = None
    removed: list[tuple[int, ...]] | None = None
    batch: dict = field(default_factory=dict)
    watch: str | None = None
    tenant: str | None = None

    @property
    def failed(self) -> bool:
        """Parity with RunResult/QueryExplanation record handling."""
        return False

    def to_dict(self) -> dict:
        """JSON-ready dict (embeddings as lists; tagged ``kind: delta``)."""
        payload = {
            "kind": "delta",
            "pattern_name": self.pattern_name,
            "pattern": self.pattern,
            "version": self.version,
            "graph_fingerprint": self.graph_fingerprint,
            "added_count": self.added_count,
            "removed_count": self.removed_count,
            "batch": dict(self.batch),
        }
        if self.added is not None:
            payload["added"] = [list(emb) for emb in self.added]
        if self.removed is not None:
            payload["removed"] = [list(emb) for emb in self.removed]
        if self.watch is not None:
            payload["watch"] = self.watch
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "DeltaRecord":
        """Inverse of :meth:`to_dict` (embeddings back to tuples)."""
        if data.get("kind") != "delta":
            raise ValueError("not a delta record")
        added = data.get("added")
        removed = data.get("removed")
        return cls(
            pattern_name=data["pattern_name"],
            pattern=data["pattern"],
            version=int(data["version"]),
            graph_fingerprint=data["graph_fingerprint"],
            added_count=int(data["added_count"]),
            removed_count=int(data["removed_count"]),
            added=(
                None if added is None
                else [tuple(int(x) for x in emb) for emb in added]
            ),
            removed=(
                None if removed is None
                else [tuple(int(x) for x in emb) for emb in removed]
            ),
            batch=dict(data.get("batch") or {}),
            watch=data.get("watch"),
            tenant=data.get("tenant"),
        )
