"""Streaming graph ingest and incremental continuous queries.

The rest of the repository treats a graph as frozen: one CSR snapshot,
one fingerprint, one-shot queries.  This package adds the live-traffic
vertical slice on top of that model without breaking it:

- :mod:`repro.streaming.version` — ``apply_batch`` produces a *new*
  immutable snapshot per batch; :class:`GraphVersion` handles let the
  service, cache, and shard workers key on ``(fingerprint, version)``
  while in-flight queries keep reading the snapshot they started on.
- :mod:`repro.streaming.incremental` — delta embeddings (new + vanished
  matches) per batch, enumerated only from the touched edges by rooting
  the existing backtracking machinery at each one.
- :mod:`repro.streaming.records` — the ``DeltaRecord`` JSONL kind, so
  delta streams replay through :func:`repro.api.results.read_records_jsonl`.
- :mod:`repro.streaming.continuous` — ``ContinuousQueryManager`` ties it
  together: registered watches, batch ingest, per-watch delta fan-out
  (riding a :class:`~repro.service.scheduler.QueryScheduler` pool when
  one is attached, with tenant quotas applied per delta job).
"""

from repro.streaming.continuous import ContinuousQueryManager, Watch
from repro.streaming.incremental import (
    DeltaParityError,
    IncrementalMatcher,
    full_embeddings,
)
from repro.streaming.records import DeltaRecord
from repro.streaming.version import GraphVersion, VersionedGraph

__all__ = [
    "ContinuousQueryManager",
    "DeltaParityError",
    "DeltaRecord",
    "GraphVersion",
    "IncrementalMatcher",
    "VersionedGraph",
    "Watch",
    "full_embeddings",
]
