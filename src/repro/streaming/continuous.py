"""Continuous queries: registered watches fed by ingest batches.

:class:`ContinuousQueryManager` owns the linear version history of one
streamed graph and a set of :class:`Watch` registrations.  Every ingest
batch produces a new :class:`~repro.streaming.version.GraphVersion` and,
for each watch, a :class:`~repro.streaming.records.DeltaRecord` computed
by the incremental matcher from the touched edges only.

With a :class:`~repro.service.scheduler.QueryScheduler` attached, delta
computations ride the scheduler's worker pool as jobs — which is where
per-tenant quotas bite: each watch's per-batch delta is admitted against
its owner's token bucket, and a quota-rejected delta is *dropped* (the
watch's ``dropped`` counter and the poll response say so) rather than
computed for free.  Standalone (no scheduler — the ``Session.watch``
path), deltas are computed inline and no quotas apply.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Callable, Iterable

from repro.enumeration.backtracking import EnumerationStats
from repro.graph.graph import Graph, canonical_edge_array
from repro.query.pattern import Pattern
from repro.streaming.incremental import IncrementalMatcher
from repro.streaming.records import DeltaRecord
from repro.streaming.version import GraphVersion, VersionedGraph


class Watch:
    """One registered continuous query.

    Delta records accumulate in a bounded pending queue until
    :meth:`poll` drains them (oldest beyond ``pending_limit`` are
    dropped and counted); an attached push sink (service push mode)
    additionally receives every record as it is published.
    """

    def __init__(
        self,
        watch_id: str,
        pattern: Pattern,
        matcher: IncrementalMatcher,
        *,
        tenant: str | None = None,
        collect: bool = True,
        pending_limit: int = 256,
    ):
        self.id = watch_id
        self.pattern = pattern
        self.matcher = matcher
        self.tenant = tenant
        self.collect = collect
        self.delivered = 0
        #: Batches whose delta never reached this watch (tenant quota
        #: rejection or pending-queue overflow) — cumulative, reported by
        #: poll so a subscriber knows its stream is gappy and can resync.
        self.dropped = 0
        self._pending: deque[DeltaRecord] = deque()
        self._pending_limit = pending_limit
        self._cond = threading.Condition()
        self._push: Callable[[DeltaRecord], None] | None = None

    def poll(self, *, wait: float | None = None) -> list[DeltaRecord]:
        """Drain pending records, optionally waiting up to ``wait`` s."""
        with self._cond:
            if wait is not None and not self._pending:
                self._cond.wait(timeout=wait)
            records = list(self._pending)
            self._pending.clear()
            return records

    # -- manager side ---------------------------------------------------
    def _publish(self, record: DeltaRecord) -> None:
        overflowed = 0
        with self._cond:
            self._pending.append(record)
            while len(self._pending) > self._pending_limit:
                self._pending.popleft()
                self.dropped += 1
                overflowed += 1
            self.delivered += 1
            push = self._push
            self._cond.notify_all()
        if overflowed:
            from repro.obs import events as _events

            _events.emit(
                "warning",
                "streaming",
                _events.WATCH_DROPPED,
                watch=self.id,
                reason="overflow",
                dropped=overflowed,
                pending_limit=self._pending_limit,
            )
        if push is not None:
            try:
                push(record)
            except Exception:
                # A dead push sink (connection gone) must not poison
                # ingest; the records still land in the pending queue.
                with self._cond:
                    if self._push is push:
                        self._push = None

    def _note_dropped(self) -> None:
        with self._cond:
            self.dropped += 1

    def describe(self) -> dict:
        """JSON-friendly registration summary."""
        with self._cond:
            return {
                "watch": self.id,
                "pattern": self.pattern.name,
                "tenant": self.tenant,
                "collect": self.collect,
                "delivered": self.delivered,
                "dropped": self.dropped,
                "pending": len(self._pending),
                "push": self._push is not None,
            }


class ContinuousQueryManager:
    """Watches + versioned graph + per-batch delta fan-out.

    Parameters
    ----------
    graph:
        The initial snapshot (version 0).
    scheduler:
        Optional :class:`~repro.service.scheduler.QueryScheduler`; when
        given, per-watch delta computations run as jobs on its worker
        pool under the watch owner's tenant quota, and ``on_rebind`` is
        the hook the service uses to swap the scheduler/cache over to
        the new version.
    verify:
        Assert full-recount parity for every delta (test/CI mode).
    on_rebind:
        ``callable(old: GraphVersion, new: GraphVersion)`` invoked after
        each batch swap, before deltas are delivered.
    on_record:
        ``callable(DeltaRecord)`` invoked for every delivered record
        (the server appends them to its request log).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        scheduler=None,
        verify: bool = False,
        on_rebind: Callable[[GraphVersion, GraphVersion], None] | None = None,
        on_record: Callable[[DeltaRecord], None] | None = None,
    ):
        self._versions = VersionedGraph(graph)
        self._scheduler = scheduler
        self._verify = verify
        self._on_rebind = on_rebind
        self._on_record = on_record
        self._watches: dict[str, Watch] = {}
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._batches = 0
        self._delta_records = 0
        self._quota_dropped = 0

    # ------------------------------------------------------------------
    @property
    def current(self) -> GraphVersion:
        """The latest graph version handle."""
        return self._versions.current

    def register(
        self,
        query: "str | Pattern",
        *,
        tenant: str | None = None,
        collect: bool = True,
    ) -> Watch:
        """Register a continuous query; returns its :class:`Watch`.

        ``query`` is anything :func:`repro.api.session.resolve_query`
        accepts except labeled patterns.  Rooting plans (one matching
        order per directed pattern edge) are precomputed here, so ingest
        batches pay only the neighbourhood enumeration.
        """
        from repro.api.session import resolve_query

        pattern = resolve_query(query)
        if not isinstance(pattern, Pattern):
            raise ValueError(
                "continuous queries support unlabeled patterns only"
            )
        matcher = IncrementalMatcher(pattern)
        with self._lock:
            watch = Watch(
                f"w{next(self._ids)}",
                pattern,
                matcher,
                tenant=tenant,
                collect=collect,
            )
            self._watches[watch.id] = watch
            return watch

    def unregister(self, watch_id: str) -> bool:
        """Remove a watch; False when the id is unknown (idempotent)."""
        with self._lock:
            return self._watches.pop(watch_id, None) is not None

    def get(self, watch_id: str) -> Watch:
        """The live watch for ``watch_id`` (KeyError when unknown)."""
        with self._lock:
            return self._watches[watch_id]

    def attach_push(
        self, watch_id: str, sink: Callable[[DeltaRecord], None]
    ) -> None:
        """Route every future record of ``watch_id`` through ``sink``."""
        watch = self.get(watch_id)
        with watch._cond:
            watch._push = sink

    def detach_push(self, watch_id: str) -> None:
        """Drop the push sink (connection closed); pending queue remains."""
        with self._lock:
            watch = self._watches.get(watch_id)
        if watch is not None:
            with watch._cond:
                watch._push = None

    def poll(self, watch_id: str, *, wait: float | None = None) -> list[DeltaRecord]:
        """Drain one watch's pending records (KeyError when unknown)."""
        return self.get(watch_id).poll(wait=wait)

    # ------------------------------------------------------------------
    def ingest(
        self,
        additions: Iterable[tuple[int, int]] = (),
        deletions: Iterable[tuple[int, int]] = (),
        *,
        executor=None,
        timeout: float | None = None,
    ) -> dict:
        """Apply one batch and fan deltas out to every watch.

        Returns a JSON-friendly report: the new version handle plus a
        per-watch outcome (delta counts, or why the watch got nothing).
        Batches serialise — versions form a linear history.
        """
        with self._lock:
            old, new = self._versions.apply_batch(
                additions, deletions, executor=executor
            )
            if self._on_rebind is not None:
                self._on_rebind(old, new)
            n = new.graph.num_vertices
            add = [
                (int(u), int(v))
                for u, v in canonical_edge_array(
                    additions, n, field="additions"
                )
            ]
            delete = [
                (int(u), int(v))
                for u, v in canonical_edge_array(
                    deletions, n, field="deletions"
                )
            ]
            batch = {"additions": len(add), "deletions": len(delete)}
            watches = list(self._watches.values())
            report: dict = dict(new.describe())
            report["batch"] = batch
            report["watches"] = {}
            jobs: list[tuple[Watch, object]] = []
            for watch in watches:
                def compute(
                    watch: Watch = watch,
                ) -> DeltaRecord:
                    return self._compute(watch, old, new, add, delete, batch)

                if self._scheduler is not None:
                    from repro.service.tenancy import QuotaExceeded

                    try:
                        ticket = self._scheduler.submit_job(
                            compute,
                            tenant=watch.tenant,
                            description=f"delta:{watch.id}",
                        )
                    except QuotaExceeded as exc:
                        watch._note_dropped()
                        self._quota_dropped += 1
                        from repro.obs import events as _events

                        _events.emit(
                            "warning",
                            "streaming",
                            _events.WATCH_DROPPED,
                            watch=watch.id,
                            reason="quota",
                            tenant=watch.tenant,
                        )
                        report["watches"][watch.id] = {
                            "dropped": True,
                            "error": str(exc),
                        }
                        continue
                    jobs.append((watch, ticket))
                else:
                    jobs.append((watch, compute))
            for watch, job in jobs:
                try:
                    if hasattr(job, "result"):
                        record = job.result(timeout)
                    else:
                        record = job()
                except Exception as exc:
                    report["watches"][watch.id] = {
                        "failed": True,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                    continue
                watch._publish(record)
                self._delta_records += 1
                if self._on_record is not None:
                    self._on_record(record)
                report["watches"][watch.id] = {
                    "added": record.added_count,
                    "removed": record.removed_count,
                }
            self._batches += 1
            return report

    def _compute(
        self,
        watch: Watch,
        old: GraphVersion,
        new: GraphVersion,
        add: list[tuple[int, int]],
        delete: list[tuple[int, int]],
        batch: dict,
    ) -> DeltaRecord:
        stats = EnumerationStats()
        added, removed = watch.matcher.delta(
            old.graph, new.graph, add, delete, stats=stats
        )
        if self._verify:
            watch.matcher.verify_parity(old.graph, new.graph, added, removed)
        return DeltaRecord(
            pattern_name=watch.pattern.name,
            pattern=str(watch.pattern),
            version=new.version,
            graph_fingerprint=new.fingerprint,
            added_count=len(added),
            removed_count=len(removed),
            added=added if watch.collect else None,
            removed=removed if watch.collect else None,
            batch=batch,
            watch=watch.id,
            tenant=watch.tenant,
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-safe snapshot: version, watches, batch/drop counters."""
        with self._lock:
            watches = [watch.describe() for watch in self._watches.values()]
            return {
                **self.current.describe(),
                "watches": watches,
                "batches": self._batches,
                "delta_records": self._delta_records,
                "quota_dropped": self._quota_dropped,
            }
