"""Incremental pattern matching: delta embeddings per ingest batch.

The correctness argument, in full, because everything rests on it.  A
batch may add edges and delete edges but never both for the same edge
(:meth:`Graph.apply_batch` rejects overlap).  Then:

- every embedding present in ``new`` but not in ``old`` must use at
  least one *added* data edge (all its other edges exist in both), and
- every embedding present in ``old`` but not in ``new`` must use at
  least one *deleted* data edge.

So the delta is exactly "matches using a touched edge", enumerated in
the appropriate snapshot: additions against ``new``, deletions against
``old``.  To find matches using edge ``{a, b}`` we root the existing
backtracking enumerator there: for every *directed* pattern edge
``(u, v)`` we build a matching order with prefix ``[u, v]`` and seed
``f(u) = a, f(v) = b`` (``a < b`` canonical).  An embedding ``f`` using
``{a, b}`` maps exactly one pattern edge onto it in exactly one
orientation, so across the ``2 |E_P|`` rooting plans it is produced
exactly once per touched edge it uses.  Double counting across edges is
removed by attributing each embedding to the *first* touched edge it
uses (later roots skip embeddings containing an earlier edge).

Symmetry-breaking constraints are passed through unchanged — they are
inequalities on data vertices, independent of which snapshot is being
read — so delta sets compose exactly with full constrained enumeration,
which is what :func:`verify_parity` asserts.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.enumeration.backtracking import (
    BacktrackingEnumerator,
    EnumerationStats,
    compute_matching_order,
    enumerate_embeddings,
)
from repro.graph.graph import Graph
from repro.query.pattern import Pattern
from repro.query.symmetry import symmetry_breaking_constraints


class DeltaParityError(AssertionError):
    """Incremental delta disagreed with the full re-enumeration diff."""


def full_embeddings(
    graph: Graph,
    pattern: Pattern,
    constraints: Sequence[tuple[int, int]] | None = None,
) -> set[tuple[int, ...]]:
    """One-shot constrained enumeration, as a set (parity reference)."""
    if constraints is None:
        constraints = symmetry_breaking_constraints(pattern)
    return set(
        enumerate_embeddings(
            graph.neighbors, graph.vertices(), pattern, list(constraints)
        )
    )


class IncrementalMatcher:
    """Delta embeddings for one registered pattern.

    Rooting plans (one matching order per directed pattern edge) are
    computed once at construction; each :meth:`matches_using` call then
    costs only the neighbourhood exploration around the touched edges.
    """

    def __init__(
        self,
        pattern: Pattern,
        constraints: Sequence[tuple[int, int]] | None = None,
    ):
        self.pattern = pattern
        if constraints is None:
            constraints = symmetry_breaking_constraints(pattern)
        self.constraints = list(constraints)
        self._plans: list[tuple[int, int, list[int]]] = []
        for u in pattern.vertices():
            for v in pattern.adj(u):
                order = compute_matching_order(pattern, prefix=[u, v])
                self._plans.append((u, v, order))

    # ------------------------------------------------------------------
    def matches_using(
        self,
        adjacency: Callable[[int], np.ndarray],
        edges: Iterable[tuple[int, int]],
        *,
        stats: EnumerationStats | None = None,
    ) -> list[tuple[int, ...]]:
        """Constraint-satisfying embeddings using >= 1 of ``edges``.

        ``edges`` must be canonical ``(a, b)`` with ``a < b`` (the batch
        normalisation in :func:`repro.graph.graph.canonical_edge_array`
        guarantees this).  Each embedding is attributed to the first
        listed edge it uses, so the result contains every qualifying
        embedding exactly once.
        """
        stats = stats or EnumerationStats()
        pattern_edges = list(self.pattern.edges())
        enumerators = [
            (
                u,
                v,
                BacktrackingEnumerator(
                    pattern=self.pattern,
                    adjacency=adjacency,
                    constraints=self.constraints,
                    order=order,
                    stats=stats,
                ),
            )
            for u, v, order in self._plans
        ]
        earlier: set[tuple[int, int]] = set()
        found: list[tuple[int, ...]] = []
        for a, b in edges:
            a, b = int(a), int(b)
            for u, v, enumerator in enumerators:
                for emb in enumerator.run_seeded({u: a, v: b}):
                    uses_earlier = any(
                        (min(emb[p], emb[q]), max(emb[p], emb[q])) in earlier
                        for p, q in pattern_edges
                    )
                    if not uses_earlier:
                        found.append(emb)
            earlier.add((a, b))
        return found

    def delta(
        self,
        old_graph: Graph,
        new_graph: Graph,
        additions: Iterable[tuple[int, int]],
        deletions: Iterable[tuple[int, int]],
        *,
        stats: EnumerationStats | None = None,
    ) -> tuple[list[tuple[int, ...]], list[tuple[int, ...]]]:
        """``(added, removed)`` embeddings for one applied batch.

        ``additions``/``deletions`` are the canonical edge batches that
        turned ``old_graph`` into ``new_graph``.  New matches are rooted
        at added edges in the new snapshot; vanished matches at deleted
        edges in the old one.
        """
        added = self.matches_using(
            new_graph.neighbors, additions, stats=stats
        )
        removed = self.matches_using(
            old_graph.neighbors, deletions, stats=stats
        )
        return added, removed

    def verify_parity(
        self,
        old_graph: Graph,
        new_graph: Graph,
        added: Sequence[tuple[int, ...]],
        removed: Sequence[tuple[int, ...]],
    ) -> None:
        """Assert the delta equals the diff of full re-enumerations.

        The full-recount safety net the paper trail demands: enumerate
        both snapshots from scratch and require ``added``/``removed`` to
        match the set difference exactly.  Raises
        :class:`DeltaParityError` with the disagreeing embeddings.
        """
        before = full_embeddings(old_graph, self.pattern, self.constraints)
        after = full_embeddings(new_graph, self.pattern, self.constraints)
        expect_added = after - before
        expect_removed = before - after
        got_added, got_removed = set(added), set(removed)
        if len(got_added) != len(added) or len(got_removed) != len(removed):
            raise DeltaParityError(
                f"{self.pattern.name}: delta lists contain duplicates"
            )
        if got_added != expect_added or got_removed != expect_removed:
            raise DeltaParityError(
                f"{self.pattern.name}: incremental delta diverges from "
                f"full recount (added: missing={sorted(expect_added - got_added)} "
                f"spurious={sorted(got_added - expect_added)}; "
                f"removed: missing={sorted(expect_removed - got_removed)} "
                f"spurious={sorted(got_removed - expect_removed)})"
            )
