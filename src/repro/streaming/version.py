"""Versioned graph snapshots for the streaming ingest path.

Mutation never happens in place: every ingest batch produces a fresh
immutable :class:`~repro.graph.graph.Graph` via ``apply_batch`` and bumps
a monotonically increasing version number.  A :class:`GraphVersion` is
the handle everything downstream keys on — the result cache leads its
keys with the fingerprint, shard workers bind by fingerprint, and the
scheduler pins the (graph, partition) pair per execution — so swapping
in a new version can never corrupt a query already running against an
older one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable

from repro.graph.graph import Graph


@dataclass(frozen=True)
class GraphVersion:
    """One immutable snapshot in a linear ingest history."""

    version: int
    graph: Graph
    fingerprint: str

    @classmethod
    def initial(cls, graph: Graph) -> "GraphVersion":
        """Version 0: the graph the stream started from."""
        return cls(version=0, graph=graph, fingerprint=graph.fingerprint())

    def describe(self) -> dict:
        """Small JSON-friendly summary (service responses, metrics)."""
        return {
            "version": self.version,
            "fingerprint": self.fingerprint,
            "num_vertices": self.graph.num_vertices,
            "num_edges": self.graph.num_edges,
        }


class VersionedGraph:
    """Thread-safe holder of the current :class:`GraphVersion`.

    ``apply_batch`` builds the next snapshot and swaps it in atomically;
    readers that grabbed :attr:`current` earlier keep a fully usable
    (immutable) snapshot — there is no coordination beyond the swap.
    """

    def __init__(self, graph: Graph | GraphVersion):
        self._lock = threading.Lock()
        if isinstance(graph, GraphVersion):
            self._current = graph
        else:
            self._current = GraphVersion.initial(graph)

    @property
    def current(self) -> GraphVersion:
        """The latest snapshot handle."""
        with self._lock:
            return self._current

    def apply_batch(
        self,
        additions: Iterable[tuple[int, int]] = (),
        deletions: Iterable[tuple[int, int]] = (),
        *,
        executor=None,
    ) -> tuple[GraphVersion, GraphVersion]:
        """Apply one batch; returns ``(old, new)`` version handles.

        Validation errors from :meth:`Graph.apply_batch` propagate before
        any state changes, so a rejected batch leaves the history
        untouched.  ``executor`` fans the CSR delta merge out in chunks.
        """
        with self._lock:
            old = self._current
            graph = old.graph.apply_batch(
                additions, deletions, executor=executor
            )
            new = GraphVersion(
                version=old.version + 1,
                graph=graph,
                fingerprint=graph.fingerprint(),
            )
            self._current = new
            return old, new
