"""Deterministic capture / merge of simulated-cluster state.

A parallel backend runs each unit of work against a *worker-local* replica
of the cluster and ships back a :class:`ClusterDelta` — the difference
between the replica's state after the task and the snapshot it started
from.  The parent applies deltas **in task-submission order**, so the
merged clocks, memory peaks, operation counters and network matrices are
bit-identical regardless of how many workers executed the batch or in
which order tasks finished.

The merge is exact under the *single-writer* discipline every engine in
this repository follows: within one batch, at most one task mutates a
given machine's main clock and memory (cross-machine effects — daemon
service time and network bytes — are purely additive, so they commute).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class MachineState:
    """Snapshot of one machine's mutable simulation state."""

    clock: float
    daemon_clock: float
    memory_used: int
    peak_memory: int
    speed_factor: float


@dataclass(frozen=True)
class ClusterState:
    """Snapshot of a whole cluster, shipped to workers as the task base."""

    machines: tuple[MachineState, ...]


@dataclass
class ClusterDelta:
    """State change produced by one task, relative to its base snapshot."""

    clock: list[float]
    daemon_clock: list[float]
    memory_used: list[int]
    # Absolute peak observed by the task's replica (the replica starts
    # from the base snapshot, so this is directly comparable).
    peak_memory: list[int]
    counters: list[Counter]
    bytes_sent: np.ndarray
    messages: int


def capture_state(cluster: Cluster) -> ClusterState:
    """Snapshot machine clocks/memory (network deltas use a fresh matrix)."""
    return ClusterState(
        machines=tuple(
            MachineState(
                clock=m.clock,
                daemon_clock=m.daemon_clock,
                memory_used=m.memory_used,
                peak_memory=m.peak_memory,
                speed_factor=m.speed_factor,
            )
            for m in cluster.machines
        )
    )


def restore_state(cluster: Cluster, state: ClusterState) -> None:
    """Reset a worker-local replica to the shipped base snapshot.

    Counters are cleared and the network matrix zeroed so that the end
    state *is* the delta for those additive quantities.
    """
    for machine, base in zip(cluster.machines, state.machines):
        machine.clock = base.clock
        machine.daemon_clock = base.daemon_clock
        machine.memory_used = base.memory_used
        machine.peak_memory = base.peak_memory
        machine.speed_factor = base.speed_factor
        machine.counters.clear()
    cluster.network.bytes_sent[...] = 0
    cluster.network.messages = 0


def compute_delta(cluster: Cluster, base: ClusterState) -> ClusterDelta:
    """The replica's state change since :func:`restore_state`."""
    return ClusterDelta(
        clock=[
            m.clock - b.clock
            for m, b in zip(cluster.machines, base.machines)
        ],
        daemon_clock=[
            m.daemon_clock - b.daemon_clock
            for m, b in zip(cluster.machines, base.machines)
        ],
        memory_used=[
            m.memory_used - b.memory_used
            for m, b in zip(cluster.machines, base.machines)
        ],
        peak_memory=[m.peak_memory for m in cluster.machines],
        counters=[Counter(m.counters) for m in cluster.machines],
        bytes_sent=cluster.network.bytes_sent.copy(),
        messages=cluster.network.messages,
    )


def apply_delta(cluster: Cluster, delta: ClusterDelta) -> None:
    """Merge one task's delta into the parent cluster (in task order)."""
    for t, machine in enumerate(cluster.machines):
        machine.clock += delta.clock[t]
        machine.daemon_clock += delta.daemon_clock[t]
        machine.memory_used = max(0, machine.memory_used + delta.memory_used[t])
        machine.peak_memory = max(machine.peak_memory, delta.peak_memory[t])
        if delta.counters[t]:
            machine.counters.update(delta.counters[t])
    cluster.network.bytes_sent += delta.bytes_sent
    cluster.network.messages += delta.messages
