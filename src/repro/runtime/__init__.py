"""Execution backends: serial (default) and shared-memory process pool.

Pick a backend with :func:`get_executor` (``0``/``None`` workers = serial)
and pass it to :meth:`repro.engines.base.EnumerationEngine.run`, to
:func:`repro.bench.harness.run_query_grid`, or on the command line via
``python -m repro enumerate --workers N``.
"""

from repro.runtime.delta import (
    ClusterDelta,
    ClusterState,
    MachineState,
    apply_delta,
    capture_state,
    compute_delta,
    restore_state,
)
from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    WorkerCrashError,
    execute_task,
    get_executor,
)
from repro.runtime.shared_graph import (
    SharedArray,
    SharedArrayHandle,
    SharedGraph,
    SharedGraphHandle,
)

__all__ = [
    "ClusterDelta",
    "ClusterState",
    "Executor",
    "MachineState",
    "ProcessExecutor",
    "SerialExecutor",
    "SharedArray",
    "SharedArrayHandle",
    "SharedGraph",
    "SharedGraphHandle",
    "WorkerCrashError",
    "apply_delta",
    "capture_state",
    "compute_delta",
    "execute_task",
    "get_executor",
    "restore_state",
]
