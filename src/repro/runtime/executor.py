"""Execution backends for the simulated cluster.

Engines decompose their work into *tasks* — top-level functions called as
``fn(cluster, args)`` that mutate cluster state (clocks, memory, network)
and return a picklable payload.  An :class:`Executor` runs a batch of such
tasks and guarantees the cluster ends up in a deterministic state:

- :class:`SerialExecutor` (the default) runs tasks inline, one after the
  other, against the real cluster — exactly the pre-existing behaviour.
- :class:`ProcessExecutor` fans tasks out over a ``ProcessPoolExecutor``.
  Workers rebuild the cluster around the CSR graph arrays published in
  shared memory (see :mod:`repro.runtime.shared_graph`), run the task
  against that replica, and ship back a :class:`~repro.runtime.delta.ClusterDelta`.
  Deltas are applied in task-submission order, so counts and reported
  stats are bit-identical no matter how many workers are configured.

Tasks in one batch must be independent: they may not rely on another
task's mutations, and at most one task per batch may touch a given
machine's main clock and memory (the single-writer discipline; additive
cross-machine effects such as daemon service time are fine).

A simulated out-of-memory inside a task is reported like the serial path:
the failing task's partial state is merged, later tasks are discarded, and
the :class:`~repro.cluster.machine.SimulatedMemoryError` is re-raised in
task order.  A worker process dying outright (segfault, ``os._exit``)
surfaces as :class:`WorkerCrashError` instead of hanging the batch.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import sys
import uuid
import weakref
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cluster.cluster import Cluster
from repro.obs.trace import span as _obs_span
from repro.partition.partition import GraphPartition
from repro.runtime.delta import (
    ClusterState,
    apply_delta,
    capture_state,
    compute_delta,
    restore_state,
)
from repro.runtime.shared_graph import (
    SharedArray,
    SharedArrayHandle,
    SharedGraph,
    SharedGraphHandle,
)

TaskFn = Callable[[Cluster, Any], Any]


class WorkerCrashError(RuntimeError):
    """A worker process died before returning its task result."""


class Executor(ABC):
    """Runs batches of independent cluster tasks."""

    #: True when tasks may run concurrently (engines use this to pick
    #: schedule-free decompositions over inherently sequential ones).
    parallel: bool = False
    #: Number of OS processes executing tasks.
    workers: int = 1

    @abstractmethod
    def run_tasks(
        self, cluster: Cluster, fn: TaskFn, tasks: Sequence[Any]
    ) -> list[Any]:
        """Run ``fn(cluster, args)`` for each ``args``; payloads in order."""

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Apply a pure function to each item; results in input order.

        Unlike :meth:`run_tasks`, ``fn`` takes the item alone and must not
        touch cluster state — this is plain data parallelism (the streaming
        layer's chunked CSR delta merges ride here).  The default runs
        inline; pool-backed executors override it to fan out.  ``fn`` must
        be a module-level function when a process backend may run it.
        """
        return [fn(item) for item in items]

    def close(self) -> None:
        """Release pools and shared memory (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Inline execution against the real cluster (default backend)."""

    parallel = False
    workers = 1

    def run_tasks(
        self, cluster: Cluster, fn: TaskFn, tasks: Sequence[Any]
    ) -> list[Any]:
        with _obs_span("executor.batch", backend="serial", tasks=len(tasks)):
            return [fn(cluster, args) for args in tasks]


@dataclass(frozen=True)
class _ClusterSpec:
    """Everything a worker needs to replicate a cluster (small + picklable).

    The heavy, immutable data (graph CSR arrays + ownership map) is keyed
    by ``token`` so workers attach once per partition; the cheap
    per-cluster configuration rides alongside.
    """

    token: str
    graph: SharedGraphHandle
    owner: SharedArrayHandle
    cost_model: Any
    memory_capacity: int | None


class _SpecEntry:
    """Owner-side shared segments backing one partition's data."""

    def __init__(self, partition: GraphPartition):
        self.shared_graph = SharedGraph(partition.graph)
        self.shared_owner = SharedArray(partition.owner)
        self.token = uuid.uuid4().hex
        self.graph_handle = self.shared_graph.handle
        self.owner_handle = self.shared_owner.handle

    def close(self) -> None:
        self.shared_graph.close()
        self.shared_owner.close()


class ProcessExecutor(Executor):
    """Process-pool backend sharing the CSR graph via shared memory."""

    parallel = True

    def __init__(self, workers: int | None = None):
        self.workers = max(1, workers or os.cpu_count() or 1)
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        # Segments are published once per *partition* (immutable data);
        # fresh_copy() clusters over the same partition reuse them.
        self._specs: "weakref.WeakKeyDictionary[GraphPartition, _SpecEntry]" = (
            weakref.WeakKeyDictionary()
        )
        # One finalizer per spec entry: unlinks its segments when the
        # cluster is garbage-collected, when close() runs, or (safety net)
        # when the executor itself is collected — whichever comes first.
        self._entry_finalizers: list[weakref.finalize] = []
        self._finalizer = weakref.finalize(
            self, ProcessExecutor._cleanup, self._entry_finalizers
        )

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            # Prefer fork on Linux (cheap, inherits the warm interpreter);
            # elsewhere keep the platform default — macOS switched its
            # default to spawn because forking a process that touched
            # ObjC/CoreFoundation can crash the child.
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork"
                if sys.platform == "linux" and "fork" in methods
                else None
            )
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._pool

    def _spec_for(self, cluster: Cluster) -> _ClusterSpec:
        partition = cluster.partition
        entry = self._specs.get(partition)
        if entry is None:
            entry = _SpecEntry(partition)
            self._specs[partition] = entry
            self._entry_finalizers.append(
                weakref.finalize(partition, entry.close)
            )
        return _ClusterSpec(
            token=entry.token,
            graph=entry.graph_handle,
            owner=entry.owner_handle,
            cost_model=cluster.cost_model,
            memory_capacity=cluster.memory_capacity,
        )

    # ------------------------------------------------------------------
    def run_tasks(
        self, cluster: Cluster, fn: TaskFn, tasks: Sequence[Any]
    ) -> list[Any]:
        if not tasks:
            return []
        with _obs_span(
            "executor.batch",
            backend="process",
            tasks=len(tasks),
            workers=self.workers,
        ):
            return self._run_tasks_pooled(cluster, fn, tasks)

    def _run_tasks_pooled(
        self, cluster: Cluster, fn: TaskFn, tasks: Sequence[Any]
    ) -> list[Any]:
        pool = self._ensure_pool()
        spec = self._spec_for(cluster)
        base = capture_state(cluster)
        futures = [
            pool.submit(_worker_run, spec, base, fn, args) for args in tasks
        ]
        payloads: list[Any] = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                status, payload, delta = future.result()
            except concurrent.futures.process.BrokenProcessPool as exc:
                # The pool is unusable after a hard crash; drop it so the
                # next batch starts a fresh one.  An error already pending
                # from an earlier task wins: serial execution would have
                # stopped there before ever reaching the crashed task.
                self._pool = None
                if first_error is not None:
                    raise first_error
                raise WorkerCrashError(
                    "a cluster-task worker process died unexpectedly "
                    "(see stderr for the crashed task's output)"
                ) from exc
            except Exception as exc:
                # Result transport failed (e.g. unpicklable payload).
                # KeyboardInterrupt/SystemExit propagate immediately — a
                # user interrupt must not wait for the batch to drain.
                if first_error is None:
                    first_error = exc
                continue
            if first_error is not None:
                continue  # drained for pool hygiene; serial would not run it
            apply_delta(cluster, delta)
            if status == "error":
                # Merge the failing task's partial state first (serial
                # parity), then re-raise in task order.
                first_error = payload
            else:
                payloads.append(payload)
        if first_error is not None:
            raise first_error
        return payloads

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Fan a pure function out over the process pool (order preserved)."""
        if not items:
            return []
        pool = self._ensure_pool()
        try:
            return list(pool.map(fn, items))
        except concurrent.futures.process.BrokenProcessPool as exc:
            self._pool = None
            raise WorkerCrashError(
                "a map worker process died unexpectedly"
            ) from exc

    # ------------------------------------------------------------------
    @staticmethod
    def _cleanup(finalizers: list[weakref.finalize]) -> None:
        for finalizer in finalizers:
            finalizer()
        finalizers.clear()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._finalizer.detach()
        self._cleanup(self._entry_finalizers)
        self._specs = weakref.WeakKeyDictionary()


def get_executor(workers: int | None) -> Executor:
    """Backend from a ``--workers`` style knob: 0/None = serial."""
    if not workers or workers <= 0:
        return SerialExecutor()
    return ProcessExecutor(workers)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: token -> (attached partition, shared-memory blocks kept alive for it).
#: Unbounded on purpose: evicting would unmap segments still referenced
#: by cached cluster replicas, and a session only ever sees a handful of
#: distinct partitions.
_WORKER_PARTITIONS: dict[str, tuple[GraphPartition, list]] = {}
#: (token, cost model, capacity) -> cluster replica over a cached partition.
_WORKER_CLUSTERS: dict[tuple, Cluster] = {}
#: Cluster replicas cached per worker process; evict beyond this many.
_WORKER_CACHE_LIMIT = 8


def _worker_cluster(spec: _ClusterSpec) -> Cluster:
    """The worker-local replica for a spec, built once per process."""
    key = (spec.token, spec.cost_model, spec.memory_capacity)
    cluster = _WORKER_CLUSTERS.get(key)
    if cluster is None:
        partition_entry = _WORKER_PARTITIONS.get(spec.token)
        if partition_entry is None:
            graph, blocks = spec.graph.attach()
            owner, owner_block = spec.owner.attach()
            partition_entry = (
                GraphPartition(graph, owner), blocks + [owner_block]
            )
            _WORKER_PARTITIONS[spec.token] = partition_entry
        cluster = Cluster(
            partition_entry[0], spec.cost_model, spec.memory_capacity
        )
        while len(_WORKER_CLUSTERS) >= _WORKER_CACHE_LIMIT:
            _WORKER_CLUSTERS.pop(next(iter(_WORKER_CLUSTERS)))
        _WORKER_CLUSTERS[key] = cluster
    return cluster


def execute_task(
    cluster: Cluster, base: ClusterState, fn: TaskFn, args: Any
) -> tuple[str, Any, Any]:
    """Run one task against a replica ``cluster``; ``(status, payload, delta)``.

    The shared core of every remote backend (the process pool below and
    the socket-transport shard workers in :mod:`repro.distributed`): reset
    the replica to the shipped ``base`` snapshot, run the task, and return
    its payload together with the replica's state delta.  Every task
    exception (simulated OOM or otherwise) is returned together with the
    partial delta: the serial backend leaves a failing task's mutations on
    the real cluster, so remote backends must merge them too before
    re-raising.
    """
    restore_state(cluster, base)
    try:
        payload = fn(cluster, args)
        status = "ok"
    except Exception as exc:
        payload = exc
        status = "error"
    return status, payload, compute_delta(cluster, base)


def _worker_run(
    spec: _ClusterSpec, base: ClusterState, fn: TaskFn, args: Any
) -> tuple[str, Any, Any]:
    """Run one task against the pool worker's cached replica."""
    return execute_task(_worker_cluster(spec), base, fn, args)
