"""Zero-copy graph sharing across worker processes.

The immutable CSR arrays of a :class:`~repro.graph.graph.Graph` (``indptr``
and ``indices``) are published once into POSIX shared memory; worker
processes *attach* to the segments by name and rebuild the graph around
zero-copy numpy views.  This is what makes the process-pool execution
backend viable: the data graph — by far the largest object an engine
touches — is never pickled per task.

The same mechanism shares the partition ownership map (one int64 per
vertex), so the per-task payload shrinks to the task arguments themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.graph.graph import Graph


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable reference to one array living in shared memory."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def attach(self) -> tuple[np.ndarray, shared_memory.SharedMemory]:
        """Map the segment; caller must keep the returned block alive.

        Attaching re-registers the name with the resource tracker, which
        is harmless here: pool workers — fork- and spawn-started alike —
        inherit the owner's tracker, where registrations form a set, so
        the duplicate is a no-op and the tracker keeps exactly one entry
        until the owner unlinks (or, after a crash, cleans the segment up
        at tracker exit).
        """
        shm = shared_memory.SharedMemory(name=self.name, create=False)
        array = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf)
        array.flags.writeable = False
        return array, shm


class SharedArray:
    """Owner side of one shared-memory array (create, copy in, unlink)."""

    def __init__(self, array: np.ndarray):
        array = np.ascontiguousarray(array)
        # Zero-length segments are rejected by the OS; keep one spare byte.
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes)
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self._shm.buf)
        view[...] = array
        self.handle = SharedArrayHandle(
            name=self._shm.name, shape=tuple(array.shape), dtype=array.dtype.str
        )

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable reference to a CSR graph living in shared memory."""

    indptr: SharedArrayHandle
    indices: SharedArrayHandle

    def attach(self) -> tuple[Graph, list[shared_memory.SharedMemory]]:
        """Rebuild the graph from shared memory (zero copy).

        Returns the graph plus the shared-memory blocks backing it; the
        caller must keep the blocks referenced for the graph's lifetime.
        """
        indptr, shm_a = self.indptr.attach()
        indices, shm_b = self.indices.attach()
        return Graph(indptr, indices), [shm_a, shm_b]


class SharedGraph:
    """Owner side of a shared CSR graph.

    Create in the parent, pass :attr:`handle` to workers, and :meth:`close`
    when the executor shuts down.
    """

    def __init__(self, graph: Graph):
        self._indptr = SharedArray(graph.indptr)
        self._indices = SharedArray(graph.indices)
        self.handle = SharedGraphHandle(
            indptr=self._indptr.handle, indices=self._indices.handle
        )

    def close(self) -> None:
        """Unlink both segments (idempotent)."""
        self._indptr.close()
        self._indices.close()
