"""Benchmark harness: synthetic datasets and paper-experiment runners."""

from repro.bench.datasets import (
    DATASETS,
    DatasetSpec,
    dataset,
    dataset_profile,
    dblp_like,
    livejournal_like,
    roadnet_like,
    uk2002_like,
)
from repro.bench.harness import (
    GridResult,
    format_comm_table,
    format_time_table,
    run_query_grid,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset",
    "dataset_profile",
    "roadnet_like",
    "dblp_like",
    "livejournal_like",
    "uk2002_like",
    "GridResult",
    "run_query_grid",
    "format_time_table",
    "format_comm_table",
]
