"""Experiment harness: runs engine x query grids and formats paper tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.config import MIB, RunConfig
from repro.api.registry import EngineRegistry, default_registry
from repro.api.session import resolve_pattern
from repro.cluster import Cluster
from repro.engines.base import EnumerationEngine, RunResult
from repro.graph.graph import Graph
from repro.query.pattern import Pattern
from repro.runtime import Executor


@dataclass
class GridResult:
    """Results of one dataset's engine x query grid."""

    dataset: str
    num_machines: int
    results: dict[tuple[str, str], RunResult] = field(default_factory=dict)

    def get(self, engine: str, query: str) -> RunResult | None:
        """Result for (engine, query), or None if not run."""
        return self.results.get((engine, query))

    def engines(self) -> list[str]:
        """Engine names present, in first-seen order."""
        seen: list[str] = []
        for engine, _ in self.results:
            if engine not in seen:
                seen.append(engine)
        return seen

    def queries(self) -> list[str]:
        """Query names present, in first-seen order."""
        seen: list[str] = []
        for _, query in self.results:
            if query not in seen:
                seen.append(query)
        return seen


def _legacy_config(
    num_machines: int,
    memory_capacity: int | None,
    workers: int = 0,
    seed: int = 0,
) -> RunConfig:
    """RunConfig from the harness's historic knobs (capacity in bytes)."""
    return RunConfig(
        machines=num_machines,
        memory_mb=(
            None if memory_capacity is None else memory_capacity / MIB
        ),
        workers=workers,
        seed=seed,
    )


def make_cluster(
    graph: Graph,
    num_machines: int,
    memory_capacity: int | None = None,
    seed: int = 0,
) -> Cluster:
    """Standard benchmark cluster: METIS-like partition, default cost model.

    Thin shim over :meth:`repro.api.config.RunConfig.make_cluster`
    (``memory_capacity`` is in bytes, the simulator's unit).
    """
    return _legacy_config(
        num_machines, memory_capacity, seed=seed
    ).make_cluster(graph)


def run_query_grid(
    graph: Graph,
    dataset_name: str,
    queries: "list[str | Pattern]",
    engines: Mapping[str, EnumerationEngine] | None = None,
    num_machines: int = 10,
    memory_capacity: int | None = None,
    check_consistency: bool = True,
    workers: int = 0,
    executor: Executor | None = None,
    config: RunConfig | None = None,
    registry: EngineRegistry | None = None,
    engine_kwargs: Mapping[str, Mapping[str, Any]] | None = None,
    partition=None,
    collect: bool = False,
    limit: int | None = None,
) -> GridResult:
    """Run every engine on every query over a shared partition.

    Engines default to the registry's paper tier (Sec. 7) — pass a
    name -> instance mapping to race a custom line-up, or ``engine_kwargs``
    (per canonical name) to configure the registry-built ones.  Engines
    never see each other's clusters (fresh clocks/memory per run); with
    ``check_consistency`` all successful engines must report the same
    embedding count per query.

    ``config`` describes the cluster/backend declaratively and supersedes
    ``num_machines`` / ``memory_capacity`` (bytes) / ``workers``, which
    remain as shims.  Pass a ready-made ``executor`` to share one process
    pool across grids, and/or a prebuilt ``partition`` (matching the
    graph and machine count) to skip repartitioning.  ``collect`` keeps
    full embeddings on every result (``limit`` truncates each run's
    collected list; stats/counts are unaffected) — the default counts
    only, which is what the paper tables need.
    """
    if config is None:
        config = _legacy_config(num_machines, memory_capacity, workers)
    if engines is None:
        engines = (registry or default_registry()).create_all(
            graph=graph, engine_kwargs=engine_kwargs, paper=True
        )
    elif engine_kwargs:
        raise ValueError(
            "engine_kwargs only configures registry-built engines; "
            "it cannot apply to a ready engines mapping"
        )
    base = config.make_cluster(graph, partition=partition)
    grid = GridResult(dataset_name, config.machines)
    own_executor = executor is None
    executor = executor or config.make_executor()
    try:
        for query in queries:
            pattern = resolve_pattern(query)
            # Registered names key the grid in canonical (lower-case)
            # form; Pattern objects (possibly unregistered) key by their
            # own name.
            qname = (
                query.lower() if isinstance(query, str) else pattern.name
            )
            counts: dict[str, int] = {}
            for ename, engine in engines.items():
                cluster = base.fresh_copy()
                result = engine.run(
                    cluster, pattern,
                    collect_embeddings=collect,
                    executor=executor,
                )
                if limit is not None and result.embeddings is not None:
                    result.embeddings = result.embeddings[:limit]
                grid.results[(ename, qname)] = result
                if not result.failed:
                    counts[ename] = result.embedding_count
            if check_consistency and len(set(counts.values())) > 1:
                raise AssertionError(
                    f"engines disagree on {dataset_name}/{qname}: {counts}"
                )
    finally:
        if own_executor:
            executor.close()
    return grid


def _format_table(
    grid: GridResult,
    metric,
    header: str,
    unit: str,
) -> str:
    engines = grid.engines()
    queries = grid.queries()
    width = 12
    lines = [
        f"{header} — {grid.dataset} ({grid.num_machines} machines, {unit})",
        " " * 10 + "".join(f"{q:>{width}}" for q in queries),
    ]
    for engine in engines:
        cells = []
        for q in queries:
            result = grid.get(engine, q)
            if result is None:
                cells.append(f"{'-':>{width}}")
            elif result.failed:
                cells.append(f"{'OOM':>{width}}")
            else:
                cells.append(f"{metric(result):>{width}.3f}")
        lines.append(f"{engine:<10}" + "".join(cells))
    return "\n".join(lines)


def format_time_table(grid: GridResult) -> str:
    """Simulated elapsed-time table (paper Figs. 8a-11)."""
    return _format_table(
        grid, lambda r: r.makespan, "Time elapsed", "simulated s"
    )


def format_comm_table(grid: GridResult) -> str:
    """Communication-cost table (paper Figs. 8b-10b)."""
    return _format_table(
        grid, lambda r: r.comm_mb, "Communication cost", "MB"
    )


def format_count_table(grid: GridResult) -> str:
    """Embedding counts (sanity companion to the paper figures)."""
    return _format_table(
        grid, lambda r: float(r.embedding_count), "Embeddings", "count"
    )
