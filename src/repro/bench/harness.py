"""Experiment harness: runs engine x query grids and formats paper tables."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Cluster, CostModel
from repro.engines import all_engines
from repro.engines.base import EnumerationEngine, RunResult
from repro.graph.graph import Graph
from repro.partition import MetisLikePartitioner
from repro.query import named_patterns
from repro.query.pattern import Pattern
from repro.runtime import Executor, get_executor


@dataclass
class GridResult:
    """Results of one dataset's engine x query grid."""

    dataset: str
    num_machines: int
    results: dict[tuple[str, str], RunResult] = field(default_factory=dict)

    def get(self, engine: str, query: str) -> RunResult | None:
        """Result for (engine, query), or None if not run."""
        return self.results.get((engine, query))

    def engines(self) -> list[str]:
        """Engine names present, in first-seen order."""
        seen: list[str] = []
        for engine, _ in self.results:
            if engine not in seen:
                seen.append(engine)
        return seen

    def queries(self) -> list[str]:
        """Query names present, in first-seen order."""
        seen: list[str] = []
        for _, query in self.results:
            if query not in seen:
                seen.append(query)
        return seen


def make_cluster(
    graph: Graph,
    num_machines: int,
    memory_capacity: int | None = None,
    seed: int = 0,
) -> Cluster:
    """Standard benchmark cluster: METIS-like partition, default cost model."""
    return Cluster.create(
        graph,
        num_machines,
        partitioner=MetisLikePartitioner(seed=seed),
        cost_model=CostModel(),
        memory_capacity=memory_capacity,
    )


def run_query_grid(
    graph: Graph,
    dataset_name: str,
    queries: list[str],
    engines: dict[str, EnumerationEngine] | None = None,
    num_machines: int = 10,
    memory_capacity: int | None = None,
    check_consistency: bool = True,
    workers: int = 0,
    executor: Executor | None = None,
) -> GridResult:
    """Run every engine on every query over a shared partition.

    Engines never see each other's clusters (fresh clocks/memory per run);
    with ``check_consistency`` all successful engines must report the same
    embedding count per query.

    ``workers`` > 0 fans the independent per-machine work of every run out
    over that many OS processes (embedding counts are backend-independent);
    alternatively pass a ready-made ``executor`` to share its process pool
    across grids.
    """
    if engines is None:
        engines = {name: cls() for name, cls in all_engines().items()}
    base = make_cluster(graph, num_machines, memory_capacity)
    patterns = named_patterns()
    grid = GridResult(dataset_name, num_machines)
    own_executor = executor is None
    executor = executor or get_executor(workers)
    try:
        for qname in queries:
            pattern = patterns[qname]
            counts: dict[str, int] = {}
            for ename, engine in engines.items():
                cluster = base.fresh_copy()
                result = engine.run(
                    cluster, pattern,
                    collect_embeddings=False,
                    executor=executor,
                )
                grid.results[(ename, qname)] = result
                if not result.failed:
                    counts[ename] = result.embedding_count
            if check_consistency and len(set(counts.values())) > 1:
                raise AssertionError(
                    f"engines disagree on {dataset_name}/{qname}: {counts}"
                )
    finally:
        if own_executor:
            executor.close()
    return grid


def _format_table(
    grid: GridResult,
    metric,
    header: str,
    unit: str,
) -> str:
    engines = grid.engines()
    queries = grid.queries()
    width = 12
    lines = [
        f"{header} — {grid.dataset} ({grid.num_machines} machines, {unit})",
        " " * 10 + "".join(f"{q:>{width}}" for q in queries),
    ]
    for engine in engines:
        cells = []
        for q in queries:
            result = grid.get(engine, q)
            if result is None:
                cells.append(f"{'-':>{width}}")
            elif result.failed:
                cells.append(f"{'OOM':>{width}}")
            else:
                cells.append(f"{metric(result):>{width}.3f}")
        lines.append(f"{engine:<10}" + "".join(cells))
    return "\n".join(lines)


def format_time_table(grid: GridResult) -> str:
    """Simulated elapsed-time table (paper Figs. 8a-11)."""
    return _format_table(
        grid, lambda r: r.makespan, "Time elapsed", "simulated s"
    )


def format_comm_table(grid: GridResult) -> str:
    """Communication-cost table (paper Figs. 8b-10b)."""
    return _format_table(
        grid, lambda r: r.comm_mb, "Communication cost", "MB"
    )


def format_count_table(grid: GridResult) -> str:
    """Embedding counts (sanity companion to the paper figures)."""
    return _format_table(
        grid, lambda r: float(r.embedding_count), "Embeddings", "count"
    )
