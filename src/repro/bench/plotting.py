"""Terminal bar charts for the benchmark grids.

The paper presents its evaluation as grouped bar charts (Figs. 8-11, 15).
This module renders the same shape as ASCII art so a terminal-only run of
the benchmark suite still produces a visual: one group of bars per query,
one bar per engine, log or linear scaling, OOM shown as the paper's
"empty" bar.
"""

from __future__ import annotations

import math

from repro.bench.harness import GridResult

#: Glyph used per engine bar, cycled in engine order.
BAR_GLYPHS = "#*+o@%"


def _scaled(value: float, limit: float, width: int, log: bool) -> int:
    if value <= 0:
        return 0
    if log:
        floor = limit / 10 ** 6
        position = math.log10(max(value, floor) / floor)
        full = math.log10(limit / floor)
    else:
        position, full = value, limit
    if full <= 0:
        return 0
    return max(1, round(width * min(1.0, position / full)))


def grouped_bar_chart(
    grid: GridResult,
    metric=lambda r: r.makespan,
    title: str = "time (simulated s)",
    width: int = 44,
    log: bool = False,
) -> str:
    """Render one grouped bar chart from a benchmark grid.

    Engines keep a stable glyph across groups; failed (OOM) runs render as
    an annotated empty bar, mirroring the paper's missing bars.
    """
    engines = grid.engines()
    values = [
        metric(grid.get(e, q))
        for e in engines
        for q in grid.queries()
        if grid.get(e, q) and not grid.get(e, q).failed
    ]
    limit = max(values) if values else 1.0
    lines = [
        f"{grid.dataset}: {title} "
        f"({'log' if log else 'linear'} scale, max={limit:.4g})"
    ]
    legend = "  ".join(
        f"{BAR_GLYPHS[i % len(BAR_GLYPHS)]}={e}"
        for i, e in enumerate(engines)
    )
    lines.append(f"legend: {legend}")
    for q in grid.queries():
        lines.append(f"{q}:")
        for i, e in enumerate(engines):
            result = grid.get(e, q)
            glyph = BAR_GLYPHS[i % len(BAR_GLYPHS)]
            if result is None:
                continue
            if result.failed:
                lines.append(f"  {e:<9}|  (OOM)")
                continue
            bar = glyph * _scaled(metric(result), limit, width, log)
            lines.append(f"  {e:<9}|{bar} {metric(result):.4g}")
    return "\n".join(lines)


def comparison_chart(
    labels: list[str],
    values: dict[str, list[float]],
    title: str,
    width: int = 40,
) -> str:
    """Simple multi-series bar chart (used for scalability ratios)."""
    series = list(values)
    flat = [v for vs in values.values() for v in vs]
    limit = max(flat) if flat else 1.0
    lines = [f"{title} (max={limit:.4g})"]
    for j, label in enumerate(labels):
        lines.append(f"{label}:")
        for i, name in enumerate(series):
            glyph = BAR_GLYPHS[i % len(BAR_GLYPHS)]
            value = values[name][j]
            bar = glyph * _scaled(value, limit, width, log=False)
            lines.append(f"  {name:<9}|{bar} {value:.3g}")
    return "\n".join(lines)
