"""Scaled-down analogues of the paper's four datasets (Table 1).

The real graphs (RoadNet 717M edges, UK2002 298M edges...) are neither
available offline nor tractable in pure Python, so each dataset here is a
seeded synthetic graph preserving the structural property the paper uses it
for:

========================  ===========================================
roadnet_like              near-planar, avg degree ~2.2, huge diameter:
                          SM-E handles almost everything (Exp-1)
dblp_like                 small but dense community structure (Exp-2)
livejournal_like          heavy-tailed social graph, triangle-rich
                          (Exp-3: join engines become impractical)
uk2002_like               densest, extreme hubs (Exp-4: join engines
                          OOM, Crystal index is huge)
========================  ===========================================

Sizes are chosen so the *full* evaluation grid (4 datasets x 8 queries x
5 engines) completes in minutes under CPython while keeping the paper's
orderings intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.graph import (
    community_graph,
    diameter_lower_bound,
    grid_road_network,
    powerlaw_cluster,
)
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Descriptor of one benchmark dataset."""

    name: str
    paper_name: str
    description: str


DATASETS: dict[str, DatasetSpec] = {
    "roadnet": DatasetSpec(
        "roadnet", "RoadNet",
        "grid with sparse shortcuts; sparse, enormous diameter",
    ),
    "dblp": DatasetSpec(
        "dblp", "DBLP",
        "co-authorship communities; small but dense",
    ),
    "livejournal": DatasetSpec(
        "livejournal", "LiveJournal",
        "power-law social graph with triangle closure",
    ),
    "uk2002": DatasetSpec(
        "uk2002", "UK2002",
        "densest power-law web graph with extreme hubs",
    ),
}


@lru_cache(maxsize=None)
def roadnet_like(scale: float = 1.0, seed: int = 11) -> Graph:
    """RoadNet analogue: W x H grid plus sparse diagonals."""
    side = max(8, int(70 * scale ** 0.5))
    return grid_road_network(side, side, extra_edge_prob=0.04, seed=seed)


@lru_cache(maxsize=None)
def dblp_like(scale: float = 1.0, seed: int = 12) -> Graph:
    """DBLP analogue: overlapping co-author communities."""
    communities = max(4, int(150 * scale))
    return community_graph(
        communities, community_size=9, intra_prob=0.5, inter_edges=3,
        seed=seed,
    )


@lru_cache(maxsize=None)
def livejournal_like(scale: float = 1.0, seed: int = 13) -> Graph:
    """LiveJournal analogue: Holme-Kim power-law with clustering."""
    n = max(100, int(1500 * scale))
    return powerlaw_cluster(n, edges_per_vertex=3, triangle_prob=0.30,
                            seed=seed)


@lru_cache(maxsize=None)
def uk2002_like(scale: float = 1.0, seed: int = 14) -> Graph:
    """UK2002 analogue: denser power-law with stronger hubs."""
    n = max(120, int(1400 * scale))
    return powerlaw_cluster(n, edges_per_vertex=4, triangle_prob=0.35,
                            seed=seed)


_FACTORIES = {
    "roadnet": roadnet_like,
    "dblp": dblp_like,
    "livejournal": livejournal_like,
    "uk2002": uk2002_like,
}


def dataset(name: str, scale: float = 1.0) -> Graph:
    """Build (and cache) a benchmark dataset by name."""
    return _FACTORIES[name](scale)


def dataset_profile(name: str, scale: float = 1.0) -> dict[str, object]:
    """Table 1 row: |V|, |E|, average degree, diameter estimate."""
    graph = dataset(name, scale)
    return {
        "dataset": DATASETS[name].paper_name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "avg_degree": round(graph.average_degree(), 2),
        "diameter_lb": diameter_lower_bound(graph, sweeps=4),
    }
