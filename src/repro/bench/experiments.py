"""Experiment definitions: one function per paper table/figure.

Each function returns plain data (rows / GridResult) so the pytest-benchmark
wrappers in ``benchmarks/`` and the EXPERIMENTS.md generator share one
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import default_registry
from repro.bench.datasets import DATASETS, dataset, dataset_profile
from repro.bench.harness import GridResult, make_cluster, run_query_grid
from repro.core.embedding_trie import NODE_BYTES, embedding_list_bytes, trie_nodes_for_results
from repro.engines import CliqueIndex
from repro.engines.base import EnumerationEngine
from repro.query import (
    best_execution_plan,
    named_patterns,
    random_minimum_round_plan,
    random_star_plan,
)

PAPER_QUERY_NAMES = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8"]
CLIQUE_QUERY_NAMES = ["cq1", "cq2", "cq3", "cq4"]

#: Default benchmark scales per dataset (tuned so the full grid completes
#: in minutes under CPython; relative orderings are scale-stable).
BENCH_SCALE = {"roadnet": 1.0, "dblp": 1.0, "livejournal": 1.0, "uk2002": 1.0}

#: Per-machine simulated memory for the performance figures.  Generous for
#: the sparse datasets; tight enough on uk2002 that the join-based engines'
#: intermediate results blow through it (paper Fig. 11: "TwinTwig, SEED and
#: PSgL failed the tests of queries after q3 due to memory failure").
FIGURE_MEMORY_CAPACITY = {
    "roadnet": None,
    "dblp": 512 * 1024 * 1024,
    # The paper reports the join engines "becoming impractical" (>10^4 s)
    # on LiveJournal and OOM-failing on UK2002.  Under the scaled datasets
    # both manifest as simulated OOM at these caps; RADS stays within them.
    "livejournal": 64 * 1024 * 1024,
    "uk2002": 48 * 1024 * 1024,
}


def bench_graph(name: str):
    """The benchmark graph for a dataset name at its default scale."""
    return dataset(name, BENCH_SCALE[name])


# ----------------------------------------------------------------------
# Table 1 / Table 2
# ----------------------------------------------------------------------
def exp_table1() -> list[dict[str, object]]:
    """Dataset profiles (paper Table 1)."""
    return [
        dataset_profile(name, BENCH_SCALE[name]) for name in DATASETS
    ]


def exp_table2(max_size: int = 5) -> list[dict[str, object]]:
    """Crystal clique-index size vs. graph size (paper Table 2)."""
    rows = []
    for name in DATASETS:
        graph = bench_graph(name)
        index = CliqueIndex(graph, max_size=max_size)
        graph_bytes = graph.storage_bytes()
        index_bytes = index.size_bytes()
        rows.append({
            "dataset": DATASETS[name].paper_name,
            "graph_mb": round(graph_bytes / 1e6, 3),
            "index_mb": round(index_bytes / 1e6, 3),
            "ratio": round(index_bytes / max(1, graph_bytes), 2),
            "cliques_3": index.count(3),
            "cliques_4": index.count(4),
        })
    return rows


# ----------------------------------------------------------------------
# Figures 8-11: performance grids
# ----------------------------------------------------------------------
def exp_performance(
    dataset_name: str,
    queries: list[str] | None = None,
    num_machines: int = 10,
    engines: dict[str, EnumerationEngine] | None = None,
    workers: int = 0,
) -> GridResult:
    """Time + communication grid for one dataset (Figs. 8, 9, 10, 11).

    ``workers`` selects the execution backend (0 = serial): counts are
    identical either way, so the parallel-runtime benchmark compares the
    wall-clock of the same grid under both backends.
    """
    graph = bench_graph(dataset_name)
    if engines is None:
        # The clique index is offline state, built once per dataset and
        # handed to Crystal's factory as declarative kwargs.
        engines = default_registry().create_all(
            graph=graph,
            paper=True,
            engine_kwargs={"Crystal": {"index": _crystal_index(dataset_name)}},
        )
    return run_query_grid(
        graph,
        dataset_name,
        queries or PAPER_QUERY_NAMES,
        engines=engines,
        num_machines=num_machines,
        memory_capacity=FIGURE_MEMORY_CAPACITY.get(dataset_name),
        workers=workers,
    )


_INDEX_CACHE: dict[str, CliqueIndex] = {}


def _crystal_index(dataset_name: str) -> CliqueIndex:
    if dataset_name not in _INDEX_CACHE:
        _INDEX_CACHE[dataset_name] = CliqueIndex(
            bench_graph(dataset_name), max_size=4
        )
    return _INDEX_CACHE[dataset_name]


# ----------------------------------------------------------------------
# Figure 12: scalability
# ----------------------------------------------------------------------
def exp_scalability(
    dataset_name: str,
    machine_counts: tuple[int, ...] = (5, 10, 15),
    queries: tuple[str, ...] = ("q1", "q2", "q4"),
    engines: dict[str, EnumerationEngine] | None = None,
    scale: float = 2.5,
) -> dict[str, dict[int, float]]:
    """Scalability ratio t(5 nodes) / t(m nodes) per engine (Fig. 12).

    Runs at a larger dataset scale than the per-query figures: speedup only
    shows once per-machine work dwarfs fixed per-message costs, which is
    the regime the paper measures in.  No memory cap applies — Fig. 12
    measures speedup, not robustness, and a query OOM-failing at one node
    count but not another would make the ratios incomparable.  The per-
    engine total only counts queries that finished at *every* node count.
    """
    graph = dataset(dataset_name, scale)
    if engines is None:
        engines = default_registry().create_all(
            ["RADS", "Crystal"],
            graph=graph,
            engine_kwargs={"Crystal": {"index": True}},
        )
    runs: dict[str, dict[int, dict[str, float]]] = {
        name: {m: {} for m in machine_counts} for name in engines
    }
    for m in machine_counts:
        grid = run_query_grid(
            graph, dataset_name, list(queries), engines=engines,
            num_machines=m,
            check_consistency=False,
        )
        for name in engines:
            for q in queries:
                result = grid.get(name, q)
                if result is not None and not result.failed:
                    runs[name][m][q] = result.makespan
    base = machine_counts[0]
    ratios: dict[str, dict[int, float]] = {}
    for name in engines:
        finished = [
            q for q in queries
            if all(q in runs[name][m] for m in machine_counts)
        ]
        totals = {
            m: sum(runs[name][m][q] for q in finished)
            for m in machine_counts
        }
        ratios[name] = {
            m: (totals[base] / totals[m]) if totals.get(m) else float("nan")
            for m in machine_counts
        }
    return ratios


# ----------------------------------------------------------------------
# Figure 13: execution-plan effectiveness
# ----------------------------------------------------------------------
def exp_plan_effectiveness(
    dataset_name: str,
    queries: tuple[str, ...] = ("q4", "q5", "q6", "q7", "q8"),
    num_machines: int = 10,
    num_random: int = 3,
) -> list[dict[str, object]]:
    """RADS with RanS / RanM / optimized plans (paper Fig. 13)."""
    graph = bench_graph(dataset_name)
    base = make_cluster(
        graph, num_machines, FIGURE_MEMORY_CAPACITY.get(dataset_name)
    )
    patterns = named_patterns()
    rows = []
    for qname in queries:
        pattern = patterns[qname]
        row: dict[str, object] = {"query": qname}
        for label, providers in (
            ("RanS", [
                (lambda p, s=s: random_star_plan(p, seed=s))
                for s in range(num_random)
            ]),
            ("RanM", [
                (lambda p, s=s: random_minimum_round_plan(p, seed=s))
                for s in range(num_random)
            ]),
            ("RADS", [best_execution_plan]),
        ):
            times = []
            for provider in providers:
                engine = default_registry().create(
                    "RADS", plan_provider=provider
                )
                result = engine.run(
                    base.fresh_copy(), pattern, collect_embeddings=False
                )
                if not result.failed:
                    times.append(result.makespan)
            row[label] = sum(times) / len(times) if times else float("nan")
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Tables 3-4: embedding-trie compression
# ----------------------------------------------------------------------
def exp_compression(
    dataset_name: str,
    queries: list[str] | None = None,
) -> list[dict[str, object]]:
    """Embedding-list vs embedding-trie bytes (paper Tables 3 and 4)."""
    graph = bench_graph(dataset_name)
    cluster = make_cluster(graph, 1)
    patterns = named_patterns()
    rows = []
    oracle = default_registry().create("Single")
    for qname in queries or PAPER_QUERY_NAMES:
        pattern = patterns[qname]
        result = oracle.run(cluster.fresh_copy(), pattern)
        plan = best_execution_plan(pattern)
        order = plan.matching_order()
        ordered = [
            tuple(emb[u] for u in order) for emb in result.embeddings
        ]
        el_bytes = embedding_list_bytes(
            len(ordered), pattern.num_vertices
        )
        et_bytes = trie_nodes_for_results(ordered) * NODE_BYTES
        rows.append({
            "query": qname,
            "embeddings": len(ordered),
            "el_kb": round(el_bytes / 1024, 1),
            "et_kb": round(et_bytes / 1024, 1),
            "ratio": round(el_bytes / et_bytes, 2) if et_bytes else 0.0,
        })
    return rows


# ----------------------------------------------------------------------
# Figure 15: clique queries (SEED / Crystal / RADS)
# ----------------------------------------------------------------------
def exp_clique_queries(
    dataset_name: str, num_machines: int = 10
) -> GridResult:
    """Clique-heavy queries cq1-cq4 (paper Fig. 15)."""
    engines = default_registry().create_all(
        ["SEED", "Crystal", "RADS"],
        engine_kwargs={"Crystal": {"index": _crystal_index(dataset_name)}},
    )
    return run_query_grid(
        bench_graph(dataset_name),
        dataset_name,
        CLIQUE_QUERY_NAMES,
        engines=engines,
        num_machines=num_machines,
        memory_capacity=FIGURE_MEMORY_CAPACITY.get(dataset_name),
    )


# ----------------------------------------------------------------------
# Robustness: the 8G memory-cap anecdote of Exp-4
# ----------------------------------------------------------------------
@dataclass
class RobustnessRow:
    """Survival + peak memory per engine under one memory cap."""

    cap_mb: float | None
    survived: dict[str, bool]
    peak_mb: dict[str, float]


def exp_robustness(
    dataset_name: str = "uk2002",
    query: str = "q6",
    caps: tuple[int | None, ...] = (32 * 1024 * 1024, 12 * 1024 * 1024),
    num_machines: int = 4,
    scale: float = 0.5,
) -> list[RobustnessRow]:
    """Memory-cap sweep (paper: Crystal crashes at 8G on q6; RADS finishes).

    Run at half scale: the sweep is about *who survives which cap*, and
    the smaller graph keeps the never-finishing unlimited-memory join runs
    out of the loop entirely.
    """
    graph = dataset(dataset_name, scale)
    pattern = named_patterns()[query]
    engines = default_registry().create_all(
        ["RADS", "Crystal", "TwinTwig"],
        graph=graph,
        engine_kwargs={"Crystal": {"index": True}},
    )
    rows = []
    for cap in caps:
        survived: dict[str, bool] = {}
        peak: dict[str, float] = {}
        for name, engine in engines.items():
            cluster = make_cluster(graph, num_machines, cap)
            result = engine.run(cluster, pattern, collect_embeddings=False)
            survived[name] = not result.failed
            peak[name] = result.peak_memory / 1e6
        rows.append(
            RobustnessRow(
                cap_mb=None if cap is None else cap / 1e6,
                survived=survived,
                peak_mb=peak,
            )
        )
    return rows
