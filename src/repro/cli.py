"""Command-line interface over the :mod:`repro.api` session facade.

Subcommands cover the library's workflows end to end::

    python -m repro generate --dataset roadnet --out road.npz
    python -m repro enumerate --graph road.npz --query q4 --engine rads \
        --machines 10 --workers 4 [--json]     # alias: `repro run`
    python -m repro explain --query q4 [--engine rads] [--graph road.npz] \
        [--json]
    python -m repro plan --query q5 [--graph road.npz]
    python -m repro profile --graph road.npz
    python -m repro serve --graph road.npz --port 7463 [--threads 4]
    python -m repro submit --port 7463 --query q4 [--engine rads] [--json]
    python -m repro metrics --port 7463 [--format text] [--watch]
    python -m repro worker --port 7471 [--graph road.npz] [--workers 2]

``worker`` starts a :mod:`repro.distributed` shard daemon; point
``enumerate``/``run`` (or ``serve``) at a roster of them with
``--backend socket --shards host:port,host:port`` to execute a query's
independent per-machine work across hosts.  Counts and stats are
bit-identical to the serial backend; a shard dying mid-run is survived
(``distributed.resubmits`` in the result counters).

``serve`` starts the :mod:`repro.service` query server (concurrent
scheduler + canonical-pattern result cache) over one graph; ``submit``
is the matching client — repeated or isomorphic queries report
``cache: hit``, ``--trace`` prints the execution's span tree (engine
rounds, executor batches, shard-worker tasks, with durations and
percent-of-parent), and ``--stats`` / ``--ping`` / ``--shutdown`` drive
the management ops.  ``metrics`` is the live observability client:
timing histograms (p50/p95/p99), the slow-query log, tenants and shard
health, printed once, polled with ``--watch``, or rendered as
Prometheus-style text with ``--format text``.

Queries are registered names (``q4``, human aliases like ``house``, any
case) or edge-list DSL (``"a-b, b-c, c-a"``; ``a:0-b:1`` attaches labels
— see ROADMAP.md for the grammar).  ``explain`` prints the engine's
chosen decomposition (units, matching order, symmetry-breaking
conditions, runner-up plans, and cost estimates when ``--graph`` is
given); with ``--json`` it emits ``QueryExplanation.to_dict()``.

``enumerate`` is a thin wrapper around the public API — equivalent to::

    import repro
    result = (repro.open("road.npz")
              .with_cluster(machines=10)
              .engine("rads").query("q4").run())

Engine and query names are resolved case-insensitively through
:func:`repro.api.default_registry` (aliases like ``wcoj`` or ``oracle``
work too); ``--json`` emits the run's :meth:`RunResult.to_dict` record as
one JSON document for downstream tooling.  ``--workers N`` runs the
simulated machines' independent work on ``N`` OS processes (the
:mod:`repro.runtime` process-pool backend); results are identical to the
default serial execution.

Graphs are read by extension: ``.npz`` (binary CSR), ``.edges`` (SNAP edge
list) or ``.adj`` (adjacency text).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.api import (
    UnknownEngineError,
    UnknownQueryError,
    default_registry,
    open_session,
    resolve_pattern,
    resolve_query,
)
from repro.api import load_graph as _api_load_graph
from repro.bench.datasets import DATASETS, dataset
from repro.distributed.errors import DistributedError
from repro.graph.graph import Graph
from repro.graph.io import (
    save_adjacency_text,
    save_binary,
    save_edge_list,
)
from repro.query import best_execution_plan
from repro.query.plan_stats import estimate_plan, plan_space_summary


def load_graph(path: str) -> Graph:
    """Load a graph, dispatching on the file extension."""
    try:
        return _api_load_graph(path)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _resolve_query(name: str):
    """Pattern for ``name`` (name or DSL), or a helpful SystemExit."""
    try:
        return resolve_pattern(name)
    except UnknownQueryError as exc:
        raise SystemExit(str(exc))


def _resolve_query_maybe_labeled(name: str):
    """Pattern or LabeledPattern for ``name``, or a helpful SystemExit."""
    try:
        return resolve_query(name)
    except UnknownQueryError as exc:
        raise SystemExit(str(exc))


def save_graph(graph: Graph, path: str) -> int:
    """Save a graph, dispatching case-insensitively on the file extension."""
    from pathlib import Path

    suffix = Path(path).suffix
    saver = {
        ".npz": save_binary,
        ".edges": save_edge_list,
        ".adj": save_adjacency_text,
    }.get(suffix.lower())
    if saver is None:
        raise SystemExit(
            f"unknown graph format {suffix or path!r} for {path}; "
            f"expected .npz, .edges or .adj (any case)"
        )
    return saver(graph, path)


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = dataset(args.dataset, args.scale)
    nbytes = save_graph(graph, args.out)
    print(
        f"{args.dataset} (scale {args.scale}): {graph} "
        f"-> {args.out} ({nbytes} bytes)"
    )
    return 0


def _parse_shards(text: "str | None") -> "list[str] | None":
    """``host:port,host:port`` (or bare ports) -> shard address list."""
    if not text:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def _cmd_enumerate(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    try:
        session = open_session(graph).with_cluster(
            machines=args.machines,
            # 0 keeps its historic meaning: no cap.
            memory_mb=args.memory_mb or None,
            stragglers={0: args.straggler} if args.straggler > 1.0 else None,
        ).with_workers(args.workers).configure(collect=args.show > 0)
        session.backend(args.backend, shards=_parse_shards(args.shards))
        session.engine(args.engine).query(args.query)
    # ValueError covers ConfigError, CapabilityError (label-incapable
    # or non-distributed engine) and the labeled-query-on-unlabeled-graph
    # complaint — all user input problems deserving a one-line message.
    except (ValueError, UnknownEngineError, UnknownQueryError) as exc:
        raise SystemExit(str(exc))
    try:
        with session:
            result = session.run()
    except DistributedError as exc:
        raise SystemExit(f"distributed backend failed: {exc}")
    # ConfigError (a ValueError) now surfaces at executor-build time for
    # a socket backend with neither --shards nor a registry.
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.json:
        payload = result.to_dict()
        if payload["embeddings"] is not None:
            payload["embeddings"] = sorted(
                payload["embeddings"]
            )[: args.show]
        payload["config"] = session.config.to_dict()
        print(json.dumps(payload, sort_keys=True))
        return 1 if result.failed else 0
    if result.failed:
        print(f"FAILED: {result.failure}")
        return 1
    print(result.summary())
    for emb in sorted(result.embeddings or [])[: args.show]:
        print("  ", emb)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    pattern = _resolve_query(args.query)
    plan = best_execution_plan(pattern)
    print(f"query {pattern.name}: |V|={pattern.num_vertices} "
          f"|E|={pattern.num_edges}")
    summary = plan_space_summary(pattern)
    print(
        f"plan space: {summary['num_plans']} minimum-round plans "
        f"({summary['rounds']} rounds), scores "
        f"{summary['score_min']:.2f}..{summary['score_max']:.2f}"
    )
    if args.graph:
        graph = load_graph(args.graph)
        print(estimate_plan(pattern, plan, graph).describe())
    else:
        for i, unit in enumerate(plan.units):
            leaves = ",".join(map(str, unit.leaves))
            print(
                f"  round {i}: pivot u{unit.pivot} -> leaves {{{leaves}}}"
                f" ({unit.num_verification_edges} verification edges)"
            )
    print(f"matching order: {plan.matching_order()}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    query = _resolve_query_maybe_labeled(args.query)
    try:
        engine = default_registry().create(args.engine)
    except UnknownEngineError as exc:
        raise SystemExit(str(exc))
    graph = load_graph(args.graph) if args.graph else None
    explanation = engine.explain(query, graph=graph)
    if args.json:
        print(json.dumps(explanation.to_dict(), sort_keys=True))
    else:
        print(explanation)
    return 0


def _cmd_labeled(args: argparse.Namespace) -> int:
    from repro.enumeration.backtracking import EnumerationStats
    from repro.enumeration.labeled import LabeledPattern, labeled_embeddings
    from repro.graph.labeled import label_randomly

    graph = load_graph(args.graph)
    query = _resolve_query_maybe_labeled(args.query)
    data = label_randomly(graph, args.num_labels, seed=args.label_seed)
    if isinstance(query, LabeledPattern):
        # Labels came through the DSL ("a:0-b:1, ..."); --query-labels
        # would be a second, conflicting source.
        if args.query_labels is not None:
            raise SystemExit(
                f"query {args.query!r} already carries labels; "
                f"drop --query-labels"
            )
        pattern, qlabels = query.pattern, list(query.labels)
    else:
        pattern = query
        if args.query_labels is None:
            raise SystemExit(
                "--query-labels is required for unlabeled queries "
                "(or label the DSL: 'a:0-b:1, ...')"
            )
        try:
            qlabels = [int(x) for x in args.query_labels.split(",")]
        except ValueError:
            raise SystemExit(
                "--query-labels must be comma-separated integers"
            )
    if len(qlabels) != pattern.num_vertices:
        raise SystemExit(
            f"query {args.query!r} needs {pattern.num_vertices} labels, "
            f"got {len(qlabels)}"
        )
    if any(not 0 <= x < args.num_labels for x in qlabels):
        raise SystemExit(
            f"query labels must lie in [0, {args.num_labels})"
        )
    stats = EnumerationStats()
    matches = labeled_embeddings(
        data, LabeledPattern(pattern, qlabels),
        limit=args.limit, stats=stats,
    )
    print(
        f"{len(matches)} labeled embeddings of {pattern.name} "
        f"(labels {qlabels}) in {data}"
    )
    print(
        f"backtracking calls: {stats.recursive_calls}, "
        f"candidates scanned: {stats.candidates_scanned}"
    )
    for emb in sorted(matches)[: args.show]:
        print("  ", emb)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.distributed.worker import ShardWorker

    try:
        worker = ShardWorker(
            host=args.host,
            port=args.port,
            graph=args.graph,
            workers=args.workers,
            announce=args.announce,
            announce_interval=args.announce_interval,
        )
    # OSError covers the bind failures (port in use, bad host).
    except (ValueError, OSError) as exc:
        raise SystemExit(str(exc))
    host, port = worker.address
    held = worker.fingerprints()
    # One parseable readiness line (scripts wait for it / read the port).
    print(
        f"worker serving on {host}:{port}"
        + (f" graph {held[0][:12]}" if held else ""),
        flush=True,
    )
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        worker.close()
    print("worker stopped")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.cache import ResultCache
    from repro.service.tenancy import TenantQuota

    graph = load_graph(args.graph)
    if args.cache_capacity == 0 and args.cache_dir:
        raise SystemExit("--cache-dir needs a non-zero --cache-capacity")
    try:
        session = open_session(graph).with_cluster(
            machines=args.machines,
            memory_mb=args.memory_mb or None,
        ).with_workers(args.workers).backend(
            args.backend, shards=_parse_shards(args.shards)
        )
        cache = (
            False
            if args.cache_capacity == 0
            else ResultCache(
                capacity=args.cache_capacity,
                ttl=args.cache_ttl,
                disk_dir=args.cache_dir,
            )
        )
        default_quota = None
        if (
            args.quota_rate is not None
            or args.quota_burst is not None
            or args.quota_memory_mb is not None
        ):
            default_quota = TenantQuota(
                rate=args.quota_rate,
                burst=args.quota_burst,
                memory_mb=args.quota_memory_mb,
            )
        server = session.serve(
            host=args.host,
            port=args.port,
            threads=args.threads,
            cache=cache,
            store_dir=args.store_dir,
            memory_budget_mb=args.memory_budget_mb,
            log_path=args.log,
            default_quota=default_quota,
            slow_log=args.slow_log,
            events_path=args.events_log,
            start=False,
        )
    # OSError covers the bind failures (port in use, bad host);
    # DistributedError an unreachable --shards roster.
    except (ValueError, OSError, DistributedError) as exc:
        raise SystemExit(str(exc))
    host, port = server.address
    # One parseable readiness line (scripts wait for it / read the port).
    print(f"serving {graph} from {args.graph} on {host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    print("server stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError, connect

    try:
        client = connect((args.host, args.port))
    except OSError as exc:
        raise SystemExit(
            f"cannot connect to a query server at "
            f"{args.host}:{args.port}: {exc}"
        )
    with client:
        try:
            if args.ping:
                client.ping()
                print("pong")
                return 0
            if args.stats:
                print(json.dumps(client.stats(), sort_keys=True))
                return 0
            if args.metrics:
                print(json.dumps(client.metrics(), sort_keys=True))
                return 0
            if args.shutdown:
                client.shutdown()
                print("shutdown requested")
                return 0
            if not args.query:
                raise SystemExit(
                    "submit needs --query (or --ping/--stats/"
                    "--metrics/--shutdown)"
                )
            if args.store and args.show > 0:
                raise SystemExit(
                    "--store submissions keep embeddings in the server's "
                    "store; read them back with 'repro page' / "
                    "'repro lookup' instead of --show"
                )
            result = client.submit(
                args.query,
                engine=args.engine,
                priority=args.priority,
                timeout=args.timeout,
                collect="store" if args.store
                else True if args.show > 0 else None,
                limit=args.show if args.show > 0 else None,
                tenant=args.tenant,
                trace=args.trace,
                profile=args.profile,
            )
        except ServiceError as exc:
            raise SystemExit(str(exc))
        cache = client.last_cache
        store = client.last_store
    if args.json:
        payload = result.to_dict()
        # Only cap when the user asked for a preview; a server configured
        # with collect=True must not have its embeddings silently dropped.
        if payload["embeddings"] is not None and args.show > 0:
            payload["embeddings"] = sorted(payload["embeddings"])[: args.show]
        payload["cache"] = cache
        payload["store"] = store
        print(json.dumps(payload, sort_keys=True))
        return 1 if result.failed else 0
    if result.failed:
        print(f"FAILED: {result.failure}")
        return 1
    print(result.summary())
    print(f"cache: {cache}")
    if store is not None:
        print(f"store: {store}")
    if args.trace:
        if result.trace is None:
            print("trace: none (served from the cache/store fast path)")
        else:
            print("trace:")
            _render_trace(result.trace)
    if args.profile:
        if result.profile is None:
            print("profile: none (served from the cache/store fast path)")
        else:
            _render_profile(result.profile)
    for emb in sorted(result.embeddings or [])[: args.show]:
        print("  ", emb)
    return 0


def _render_trace(
    tree: dict,
    parent_duration: "float | None" = None,
    indent: str = "  ",
) -> None:
    """Print one span tree as an indented outline with durations.

    Each line shows the span name, its duration in milliseconds, its
    share of the parent span's duration, and any recorded attributes;
    children are indented beneath their parent in start order.
    """
    duration = tree.get("duration")
    timing = "?" if duration is None else f"{duration * 1000:.2f}ms"
    if parent_duration and duration is not None:
        timing += f" ({100.0 * duration / parent_duration:.0f}%)"
    attributes = tree.get("attributes") or {}
    notes = "".join(
        f" {key}={value}" for key, value in sorted(attributes.items())
    )
    print(f"{indent}{tree['name']}  {timing}{notes}")
    for child in tree.get("children", ()):
        _render_trace(child, duration, indent + "  ")


def _render_profile(profile: dict) -> None:
    """Print one profile record: clocks, memory, GC, flame, workers."""
    cpu = profile.get("cpu") or {}
    memory = profile.get("memory") or {}
    gc_row = profile.get("gc") or {}
    print(
        f"profile: wall {profile.get('wall_seconds', 0.0) * 1000:.2f}ms  "
        f"cpu {cpu.get('process_seconds', 0.0) * 1000:.2f}ms  "
        f"thread {cpu.get('thread_seconds', 0.0) * 1000:.2f}ms"
    )
    peak = memory.get("peak_bytes")
    allocated = memory.get("allocated_bytes")
    if peak is not None:
        print(
            f"  memory: peak {peak / 1024:.1f}KiB  "
            f"allocated {0 if allocated is None else allocated / 1024:.1f}KiB"
        )
    print(
        f"  gc: {gc_row.get('collections', 0)} collections, "
        f"{gc_row.get('collected', 0)} collected"
    )
    flame = profile.get("flame") or []
    if flame:
        print("  flame (self time):")
        for row in flame:
            print(
                f"    {row['name']:<24} x{row['count']:<4} "
                f"self {row['self'] * 1000:8.2f}ms  "
                f"total {row['total'] * 1000:8.2f}ms"
            )
    for row in profile.get("workers") or []:
        print(
            f"  worker {row.get('shard')} pid {row.get('pid')} "
            f"({row.get('mode')}): {row.get('tasks')} tasks  "
            f"utime {row.get('utime', 0.0) * 1000:.2f}ms  "
            f"stime {row.get('stime', 0.0) * 1000:.2f}ms  "
            f"maxrss {row.get('maxrss_kb')}KiB"
        )


def _cmd_metrics(args: argparse.Namespace) -> int:
    import time

    from repro.service.client import ServiceError

    remaining = args.count if args.watch else 1
    first = True
    with _connect_or_exit(args) as client:
        while remaining is None or remaining > 0:
            if not first:
                time.sleep(args.interval)
            first = False
            try:
                payload = client.metrics(
                    format="text" if args.format == "text" else None
                )
            except ServiceError as exc:
                raise SystemExit(str(exc))
            if isinstance(payload, str):
                print(payload, end="" if payload.endswith("\n") else "\n",
                      flush=True)
            else:
                print(json.dumps(payload, sort_keys=True), flush=True)
            if remaining is not None:
                remaining -= 1
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    import time

    from repro.service.client import ServiceError

    with _connect_or_exit(args) as client:
        cursor = args.since
        first = True
        try:
            return _events_loop(args, client, cursor, first, time)
        except BrokenPipeError:
            # Downstream (e.g. `| grep -q`) closed the pipe mid-stream:
            # a normal way to stop tailing, not an error.
            return 0
        except ServiceError as exc:
            raise SystemExit(str(exc))


def _events_loop(args, client, cursor, first, time) -> int:
    while True:
        if not first:
            time.sleep(args.interval)
        payload = client.events(
            level=args.level,
            component=args.component,
            since=cursor,
            limit=args.limit if first else None,
        )
        for record in payload["events"]:
            if args.json:
                print(json.dumps(record, sort_keys=True), flush=True)
            else:
                stamp = time.strftime(
                    "%H:%M:%S", time.localtime(record["ts"])
                )
                extras = "".join(
                    f" {key}={value}"
                    for key, value in sorted(record.items())
                    if key not in (
                        "ts", "seq", "level", "component", "kind"
                    )
                )
                print(
                    f"{stamp} [{record['level']:<7}] "
                    f"{record['component']}: {record['kind']}{extras}",
                    flush=True,
                )
        cursor = payload["last_seq"]
        first = False
        if not args.follow:
            return 0


def _cmd_health(args: argparse.Namespace) -> int:
    import time

    from repro.service.client import ServiceError

    status = "ok"
    with _connect_or_exit(args) as client:
        first = True
        while True:
            if not first:
                time.sleep(args.interval)
            first = False
            try:
                verdict = client.health()
            except ServiceError as exc:
                raise SystemExit(str(exc))
            status = verdict["status"]
            if args.json:
                print(json.dumps(verdict, sort_keys=True), flush=True)
            else:
                firing = verdict["firing"]
                line = f"health: {status}"
                if firing:
                    line += f"  firing: {', '.join(firing)}"
                print(line, flush=True)
                for rule in verdict["rules"]:
                    if not rule["firing"]:
                        continue
                    evidence = "".join(
                        f" {key}={value}"
                        for key, value in sorted(rule["evidence"].items())
                    )
                    print(
                        f"  {rule['name']} ({rule['severity']}):{evidence}",
                        flush=True,
                    )
            if not args.watch:
                break
    return 0 if status == "ok" else 1


def _connect_or_exit(args: argparse.Namespace):
    from repro.service.client import connect

    try:
        return connect((args.host, args.port))
    except OSError as exc:
        raise SystemExit(
            f"cannot connect to a query server at "
            f"{args.host}:{args.port}: {exc}"
        )


def _cmd_page(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    with _connect_or_exit(args) as client:
        try:
            page = client.page(
                args.query,
                engine=args.engine,
                limit=args.limit,
                offset=args.offset,
            )
        except ServiceError as exc:
            raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(page, sort_keys=True))
        return 0
    shown = len(page["embeddings"])
    print(
        f"page {page['offset']}..{page['offset'] + shown} of "
        f"{page['total']} stored embeddings (store: {page['store']})"
    )
    for emb in page["embeddings"]:
        print("  ", emb)
    return 0


def _cmd_lookup(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    with _connect_or_exit(args) as client:
        try:
            found = client.lookup(
                args.query, engine=args.engine, vertex=args.vertex
            )
        except ServiceError as exc:
            raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(found, sort_keys=True))
        return 0
    print(
        f"{found['count']} of {found['total']} stored embeddings contain "
        f"vertex {found['vertex']} (store: {found['store']})"
    )
    cap = args.show if args.show > 0 else len(found["embeddings"])
    for emb in found["embeddings"][:cap]:
        print("  ", emb)
    return 0


def _parse_edge_spec(spec: str, *, option: str) -> list[tuple[int, int]]:
    """``"0-5, 2-7"`` -> ``[(0, 5), (2, 7)]`` (SystemExit on bad input)."""
    edges = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        left, sep, right = chunk.partition("-")
        if not sep or not left.strip().isdigit() or not right.strip().isdigit():
            raise SystemExit(
                f"{option} wants comma-separated u-v vertex pairs like "
                f"'0-5,2-7', got {chunk!r}"
            )
        edges.append((int(left), int(right)))
    return edges


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError, connect

    additions = _parse_edge_spec(args.add or "", option="--add")
    deletions = _parse_edge_spec(args.delete or "", option="--delete")
    if not additions and not deletions:
        raise SystemExit("ingest needs --add and/or --delete edge lists")
    try:
        client = connect((args.host, args.port))
    except OSError as exc:
        raise SystemExit(
            f"cannot connect to a query server at "
            f"{args.host}:{args.port}: {exc}"
        )
    with client:
        try:
            report = client.ingest(
                additions=additions or None, deletions=deletions or None
            )
        except ServiceError as exc:
            raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0
    print(
        f"version {report['version']}: +{report['batch']['additions']} "
        f"-{report['batch']['deletions']} edges, "
        f"{report['num_edges']} total"
    )
    for watch_id, outcome in sorted(report.get("watches", {}).items()):
        if outcome.get("dropped"):
            print(f"  {watch_id}: dropped ({outcome['error']})")
        elif outcome.get("failed"):
            print(f"  {watch_id}: failed ({outcome['error']})")
        else:
            print(
                f"  {watch_id}: +{outcome['added']} -{outcome['removed']} "
                f"embeddings"
            )
    return 0


def _cmd_subscribe(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError, connect

    try:
        client = connect((args.host, args.port), timeout=args.timeout)
    except OSError as exc:
        raise SystemExit(
            f"cannot connect to a query server at "
            f"{args.host}:{args.port}: {exc}"
        )
    delivered = 0
    with client:
        try:
            with client.subscribe(
                args.query, tenant=args.tenant,
                collect=True if args.show > 0 else None,
            ) as subscription:
                for record in subscription:
                    if args.json:
                        print(json.dumps(record.to_dict(), sort_keys=True),
                              flush=True)
                    else:
                        print(
                            f"v{record.version}: +{record.added_count} "
                            f"-{record.removed_count} {record.pattern_name}",
                            flush=True,
                        )
                        for emb in (record.added or [])[: args.show]:
                            print("   +", emb)
                        for emb in (record.removed or [])[: args.show]:
                            print("   -", emb)
                    delivered += 1
                    if args.count and delivered >= args.count:
                        break
        except (ServiceError, TimeoutError) as exc:
            if delivered:
                # The stream already produced what it produced; a timeout
                # after N deltas is an exit condition, not a failure.
                return 0
            raise SystemExit(str(exc))
        except KeyboardInterrupt:
            return 0
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.graph import diameter_lower_bound, triangle_count

    graph = load_graph(args.graph)
    print(f"vertices: {graph.num_vertices}")
    print(f"edges: {graph.num_edges}")
    print(f"average degree: {graph.average_degree():.2f}")
    print(f"max degree: {int(graph.degrees().max())}")
    print(f"diameter (lower bound): {diameter_lower_bound(graph)}")
    if graph.num_edges < 500_000:
        print(f"triangles: {triangle_count(graph)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RADS distributed subgraph enumeration (VLDB 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset")
    gen.add_argument("--dataset", choices=sorted(DATASETS), required=True)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=_cmd_generate)

    enum = sub.add_parser("enumerate", aliases=["run"],
                          help="run an engine on a graph")
    enum.add_argument("--graph", required=True)
    enum.add_argument("--query", required=True)
    enum.add_argument("--engine", default="RADS")
    enum.add_argument("--machines", type=int, default=10)
    enum.add_argument("--memory-mb", type=int, default=None)
    enum.add_argument("--straggler", type=float, default=1.0,
                      help="slow machine 0 down by this factor")
    enum.add_argument("--workers", type=int, default=0,
                      help="execute independent per-machine work on N OS "
                           "processes sharing the graph via shared memory "
                           "(0 = serial, the default); embedding counts "
                           "are identical for every worker count")
    enum.add_argument("--backend", default="auto",
                      choices=["auto", "serial", "process", "socket"],
                      help="execution backend (auto derives from "
                           "--workers; socket dispatches to remote "
                           "`repro worker` daemons and needs --shards)")
    enum.add_argument("--shards", default=None,
                      help="comma-separated shard worker addresses for "
                           "--backend socket (host:port,host:port)")
    enum.add_argument("--show", type=int, default=0,
                      help="print up to N embeddings")
    enum.add_argument("--json", action="store_true",
                      help="emit the run as one JSON document "
                           "(RunResult.to_dict plus the active config)")
    enum.set_defaults(func=_cmd_enumerate)

    plan = sub.add_parser("plan", help="inspect execution plans for a query")
    plan.add_argument("--query", required=True)
    plan.add_argument("--graph", default=None,
                      help="optional graph for cardinality estimates")
    plan.set_defaults(func=_cmd_plan)

    explain = sub.add_parser(
        "explain",
        help="explain how an engine would run a query "
             "(decomposition, matching order, symmetry, plan ranking)",
    )
    explain.add_argument("--query", required=True,
                         help="registered name or edge-list DSL")
    explain.add_argument("--engine", default="RADS")
    explain.add_argument("--graph", default=None,
                         help="optional graph for per-round cost estimates")
    explain.add_argument("--json", action="store_true",
                         help="emit QueryExplanation.to_dict() as one "
                              "JSON document")
    explain.set_defaults(func=_cmd_explain)

    labeled = sub.add_parser(
        "labeled", help="labeled matching with synthetic labels"
    )
    labeled.add_argument("--graph", required=True)
    labeled.add_argument("--query", required=True)
    labeled.add_argument("--query-labels", default=None,
                         help="comma-separated label per query vertex "
                              "(omit when the DSL query carries labels)")
    labeled.add_argument("--num-labels", type=int, default=3)
    labeled.add_argument("--label-seed", type=int, default=0)
    labeled.add_argument("--limit", type=int, default=None)
    labeled.add_argument("--show", type=int, default=0)
    labeled.set_defaults(func=_cmd_labeled)

    profile = sub.add_parser("profile", help="print graph statistics")
    profile.add_argument("--graph", required=True)
    profile.set_defaults(func=_cmd_profile)

    serve = sub.add_parser(
        "serve",
        help="serve a graph as a long-running query service "
             "(concurrent scheduler + canonical-pattern result cache)",
    )
    serve.add_argument("--graph", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7463,
                       help="TCP port (0 = pick an ephemeral port; the "
                            "readiness line prints the bound address)")
    serve.add_argument("--machines", type=int, default=10)
    serve.add_argument("--memory-mb", type=int, default=None,
                       help="per-machine simulated memory cap; also the "
                            "basis of the scheduler's admission budget")
    serve.add_argument("--workers", type=int, default=0,
                       help="OS processes per scheduler worker thread's "
                            "executor (0 = serial)")
    serve.add_argument("--backend", default="auto",
                       choices=["auto", "serial", "process", "socket"],
                       help="execution backend for every scheduler "
                            "worker thread (socket fans served queries "
                            "out to --shards)")
    serve.add_argument("--shards", default=None,
                       help="comma-separated shard worker addresses for "
                            "--backend socket (host:port,host:port)")
    serve.add_argument("--threads", type=int, default=4,
                       help="scheduler worker threads (concurrent queries)")
    serve.add_argument("--cache-capacity", type=int, default=128,
                       help="result-cache entries (0 disables caching)")
    serve.add_argument("--cache-ttl", type=float, default=None,
                       help="result-cache entry lifetime in seconds")
    serve.add_argument("--cache-dir", default=None,
                       help="spill cached results to this directory and "
                            "reload them (fingerprint-verified) after a "
                            "restart")
    serve.add_argument("--store-dir", default=None,
                       help="persist collect='store' embedding sets to "
                            "this directory as trie-compressed columns; "
                            "enables the page/lookup/aggregate ops and "
                            "survives restarts")
    serve.add_argument("--quota-rate", type=float, default=None,
                       help="default per-tenant submission rate limit "
                            "(requests/second, token bucket)")
    serve.add_argument("--quota-burst", type=int, default=None,
                       help="token-bucket burst size for --quota-rate")
    serve.add_argument("--quota-memory-mb", type=float, default=None,
                       help="default per-tenant concurrent admission "
                            "budget (MiB)")
    serve.add_argument("--memory-budget-mb", type=float, default=None,
                       help="admission-control budget override (MiB)")
    serve.add_argument("--log", default=None,
                       help="append every served result/explanation to "
                            "this JSONL request log (replayable via "
                            "repro.api.results.read_records_jsonl)")
    serve.add_argument("--slow-log", type=int, default=16,
                       help="slow-query log depth: keep the worst N "
                            "requests by latency in metrics (default 16)")
    serve.add_argument("--events-log", default=None,
                       help="append every event-journal record (worker "
                            "losses, resubmits, quota rejections, ...) "
                            "to this JSONL file")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a query to a running repro serve instance"
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7463)
    submit.add_argument("--query", default=None,
                        help="registered name or edge-list DSL")
    submit.add_argument("--engine", default="RADS")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first (ties are FIFO)")
    submit.add_argument("--timeout", type=float, default=None,
                        help="give up if not served within this many "
                             "seconds (the run itself is not preempted)")
    submit.add_argument("--tenant", default=None,
                        help="attribute the request to this tenant's "
                             "server-side quota / fair share")
    submit.add_argument("--show", type=int, default=0,
                        help="collect and print up to N embeddings")
    submit.add_argument("--store", action="store_true",
                        help="collect='store': persist the enumeration to "
                             "the server's embedding store (needs a serve "
                             "--store-dir); page it back with 'repro page'")
    submit.add_argument("--trace", action="store_true",
                        help="record and print the execution's span tree "
                             "(engine rounds, executor batches, shard "
                             "tasks); rides in --json as result['trace']")
    submit.add_argument("--profile", action="store_true",
                        help="measure and print the request's resource "
                             "profile (CPU, peak memory, GC, flame table, "
                             "per-worker attribution); rides in --json as "
                             "result['profile']")
    submit.add_argument("--json", action="store_true",
                        help="emit RunResult.to_dict() plus the cache and "
                             "store dispositions as one JSON document")
    submit.add_argument("--ping", action="store_true",
                        help="health-check the server and exit")
    submit.add_argument("--stats", action="store_true",
                        help="print scheduler + cache counters and exit")
    submit.add_argument("--metrics", action="store_true",
                        help="print structured service metrics (queue, "
                             "tenants, cache tiers, shard roster) and exit")
    submit.add_argument("--shutdown", action="store_true",
                        help="ask the server to stop serving and exit")
    submit.set_defaults(func=_cmd_submit)

    metrics = sub.add_parser(
        "metrics",
        help="print live service metrics from a running repro serve "
             "instance (histograms, slow queries, tenants, shards)",
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument("--port", type=int, default=7463)
    metrics.add_argument("--format", choices=("json", "text"),
                         default="json",
                         help="json: one document per poll; text: "
                              "Prometheus-style exposition lines")
    metrics.add_argument("--watch", action="store_true",
                         help="poll repeatedly instead of printing once")
    metrics.add_argument("--interval", type=float, default=2.0,
                         help="seconds between --watch polls (default 2)")
    metrics.add_argument("--count", type=int, default=None,
                         help="stop --watch after N polls "
                              "(default: until interrupted)")
    metrics.set_defaults(func=_cmd_metrics)

    events = sub.add_parser(
        "events",
        help="print the service's structured event journal (worker "
             "losses, resubmits, quota rejections, cache faults, ...)",
    )
    events.add_argument("--host", default="127.0.0.1")
    events.add_argument("--port", type=int, default=7463)
    events.add_argument("--level", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="minimum severity to include")
    events.add_argument("--component", default=None,
                        help="only events from this component "
                             "(coordinator, registry, scheduler, cache, "
                             "streaming, health)")
    events.add_argument("--since", type=int, default=None,
                        help="only events with seq strictly greater "
                             "(incremental polling cursor)")
    events.add_argument("--limit", type=int, default=None,
                        help="newest N events only")
    events.add_argument("--follow", action="store_true",
                        help="keep polling for new events (seq cursor; "
                             "Ctrl-C to stop)")
    events.add_argument("--interval", type=float, default=2.0,
                        help="seconds between --follow polls (default 2)")
    events.add_argument("--json", action="store_true",
                        help="one JSON event record per line")
    events.set_defaults(func=_cmd_events)

    health = sub.add_parser(
        "health",
        help="evaluate the service's SLO health rules (exit 0 = ok, "
             "1 = degraded/critical)",
    )
    health.add_argument("--host", default="127.0.0.1")
    health.add_argument("--port", type=int, default=7463)
    health.add_argument("--watch", action="store_true",
                        help="poll repeatedly instead of printing once")
    health.add_argument("--interval", type=float, default=2.0,
                        help="seconds between --watch polls (default 2)")
    health.add_argument("--json", action="store_true",
                        help="emit the full verdict (rules + evidence) "
                             "as one JSON document per poll")
    health.set_defaults(func=_cmd_health)

    page = sub.add_parser(
        "page",
        help="page a stored embedding set (submit --store first); "
             "served from the on-disk trie index, no re-enumeration",
    )
    page.add_argument("--host", default="127.0.0.1")
    page.add_argument("--port", type=int, default=7463)
    page.add_argument("--query", required=True,
                      help="registered name or edge-list DSL (isomorphic "
                           "rewrites of the stored query work)")
    page.add_argument("--engine", default="RADS")
    page.add_argument("--limit", type=int, default=10,
                      help="page size (embeddings per page)")
    page.add_argument("--offset", type=int, default=0,
                      help="start of the page in the sorted leaf order")
    page.add_argument("--json", action="store_true",
                      help="emit the page (embeddings, total, offset, "
                           "limit, store) as one JSON document")
    page.set_defaults(func=_cmd_page)

    lookup = sub.add_parser(
        "lookup",
        help="stored embeddings containing a data vertex "
             "(inverted-postings scan over a stored set)",
    )
    lookup.add_argument("--host", default="127.0.0.1")
    lookup.add_argument("--port", type=int, default=7463)
    lookup.add_argument("--query", required=True,
                        help="registered name or edge-list DSL")
    lookup.add_argument("--engine", default="RADS")
    lookup.add_argument("--vertex", type=int, required=True,
                        help="data vertex id to look up")
    lookup.add_argument("--show", type=int, default=0,
                        help="print up to N matching embeddings "
                             "(0 = all)")
    lookup.add_argument("--json", action="store_true",
                        help="emit the matches (embeddings, count, total, "
                             "vertex, store) as one JSON document")
    lookup.set_defaults(func=_cmd_lookup)

    ingest = sub.add_parser(
        "ingest",
        help="apply one edge batch (additions/deletions) to a running "
             "repro serve instance",
    )
    ingest.add_argument("--host", default="127.0.0.1")
    ingest.add_argument("--port", type=int, default=7463)
    ingest.add_argument("--add", default=None,
                        help="edges to add: comma-separated u-v pairs, "
                             "e.g. '0-5,2-7'")
    ingest.add_argument("--delete", default=None,
                        help="edges to delete (same u-v spelling)")
    ingest.add_argument("--json", action="store_true",
                        help="emit the ingest report (new version, "
                             "per-watch delta counts) as one JSON document")
    ingest.set_defaults(func=_cmd_ingest)

    subscribe = sub.add_parser(
        "subscribe",
        help="register a continuous query and stream its delta "
             "embeddings as batches are ingested",
    )
    subscribe.add_argument("--host", default="127.0.0.1")
    subscribe.add_argument("--port", type=int, default=7463)
    subscribe.add_argument("--query", required=True,
                           help="registered name or edge-list DSL")
    subscribe.add_argument("--tenant", default=None,
                           help="attribute delta computations to this "
                                "tenant's server-side quota")
    subscribe.add_argument("--count", type=int, default=0,
                           help="exit after N deltas (0 = stream forever)")
    subscribe.add_argument("--timeout", type=float, default=None,
                           help="exit when no delta arrives for this many "
                                "seconds")
    subscribe.add_argument("--show", type=int, default=0,
                           help="collect and print up to N added/removed "
                                "embeddings per delta")
    subscribe.add_argument("--json", action="store_true",
                           help="one DeltaRecord.to_dict() JSON line per "
                                "delta")
    subscribe.set_defaults(func=_cmd_subscribe)

    worker = sub.add_parser(
        "worker",
        help="run a distributed shard worker daemon (the remote end of "
             "--backend socket)",
    )
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=7471,
                        help="TCP port (0 = pick an ephemeral port; the "
                             "readiness line prints the bound address)")
    worker.add_argument("--graph", default=None,
                        help="preload this graph so coordinators never "
                             "ship it (otherwise graphs are shipped once "
                             "and cached by fingerprint)")
    worker.add_argument("--workers", type=int, default=0,
                        help="OS processes executing tasks on this shard "
                             "(0 = inline serial)")
    worker.add_argument("--announce", default=None,
                        help="announce this worker to a query server's "
                             "elastic shard roster (host:port of a "
                             "`repro serve` instance)")
    worker.add_argument("--announce-interval", type=float, default=5.0,
                        help="seconds between re-announcements")
    worker.set_defaults(func=_cmd_worker)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
