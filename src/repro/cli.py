"""Command-line interface over the :mod:`repro.api` session facade.

Subcommands cover the library's workflows end to end::

    python -m repro generate --dataset roadnet --out road.npz
    python -m repro enumerate --graph road.npz --query q4 --engine rads \
        --machines 10 --workers 4 [--json]
    python -m repro explain --query q4 [--engine rads] [--graph road.npz] \
        [--json]
    python -m repro plan --query q5 [--graph road.npz]
    python -m repro profile --graph road.npz

Queries are registered names (``q4``, human aliases like ``house``, any
case) or edge-list DSL (``"a-b, b-c, c-a"``; ``a:0-b:1`` attaches labels
— see ROADMAP.md for the grammar).  ``explain`` prints the engine's
chosen decomposition (units, matching order, symmetry-breaking
conditions, runner-up plans, and cost estimates when ``--graph`` is
given); with ``--json`` it emits ``QueryExplanation.to_dict()``.

``enumerate`` is a thin wrapper around the public API — equivalent to::

    import repro
    result = (repro.open("road.npz")
              .with_cluster(machines=10)
              .engine("rads").query("q4").run())

Engine and query names are resolved case-insensitively through
:func:`repro.api.default_registry` (aliases like ``wcoj`` or ``oracle``
work too); ``--json`` emits the run's :meth:`RunResult.to_dict` record as
one JSON document for downstream tooling.  ``--workers N`` runs the
simulated machines' independent work on ``N`` OS processes (the
:mod:`repro.runtime` process-pool backend); results are identical to the
default serial execution.

Graphs are read by extension: ``.npz`` (binary CSR), ``.edges`` (SNAP edge
list) or ``.adj`` (adjacency text).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.api import (
    UnknownEngineError,
    UnknownQueryError,
    default_registry,
    open_session,
    resolve_pattern,
    resolve_query,
)
from repro.api import load_graph as _api_load_graph
from repro.bench.datasets import DATASETS, dataset
from repro.graph.graph import Graph
from repro.graph.io import (
    save_adjacency_text,
    save_binary,
    save_edge_list,
)
from repro.query import best_execution_plan
from repro.query.plan_stats import estimate_plan, plan_space_summary


def load_graph(path: str) -> Graph:
    """Load a graph, dispatching on the file extension."""
    try:
        return _api_load_graph(path)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _resolve_query(name: str):
    """Pattern for ``name`` (name or DSL), or a helpful SystemExit."""
    try:
        return resolve_pattern(name)
    except UnknownQueryError as exc:
        raise SystemExit(str(exc))


def _resolve_query_maybe_labeled(name: str):
    """Pattern or LabeledPattern for ``name``, or a helpful SystemExit."""
    try:
        return resolve_query(name)
    except UnknownQueryError as exc:
        raise SystemExit(str(exc))


def save_graph(graph: Graph, path: str) -> int:
    """Save a graph, dispatching case-insensitively on the file extension."""
    from pathlib import Path

    suffix = Path(path).suffix
    saver = {
        ".npz": save_binary,
        ".edges": save_edge_list,
        ".adj": save_adjacency_text,
    }.get(suffix.lower())
    if saver is None:
        raise SystemExit(
            f"unknown graph format {suffix or path!r} for {path}; "
            f"expected .npz, .edges or .adj (any case)"
        )
    return saver(graph, path)


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = dataset(args.dataset, args.scale)
    nbytes = save_graph(graph, args.out)
    print(
        f"{args.dataset} (scale {args.scale}): {graph} "
        f"-> {args.out} ({nbytes} bytes)"
    )
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    try:
        session = open_session(graph).with_cluster(
            machines=args.machines,
            # 0 keeps its historic meaning: no cap.
            memory_mb=args.memory_mb or None,
            stragglers={0: args.straggler} if args.straggler > 1.0 else None,
        ).with_workers(args.workers).configure(collect=args.show > 0)
        session.engine(args.engine).query(args.query)
    # ValueError covers ConfigError, CapabilityError (label-incapable
    # engine) and the labeled-query-on-unlabeled-graph complaint — all
    # user input problems that deserve a one-line message.
    except (ValueError, UnknownEngineError, UnknownQueryError) as exc:
        raise SystemExit(str(exc))
    with session:
        result = session.run()
    if args.json:
        payload = result.to_dict()
        if payload["embeddings"] is not None:
            payload["embeddings"] = sorted(
                payload["embeddings"]
            )[: args.show]
        payload["config"] = session.config.to_dict()
        print(json.dumps(payload, sort_keys=True))
        return 1 if result.failed else 0
    if result.failed:
        print(f"FAILED: {result.failure}")
        return 1
    print(result.summary())
    for emb in sorted(result.embeddings or [])[: args.show]:
        print("  ", emb)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    pattern = _resolve_query(args.query)
    plan = best_execution_plan(pattern)
    print(f"query {pattern.name}: |V|={pattern.num_vertices} "
          f"|E|={pattern.num_edges}")
    summary = plan_space_summary(pattern)
    print(
        f"plan space: {summary['num_plans']} minimum-round plans "
        f"({summary['rounds']} rounds), scores "
        f"{summary['score_min']:.2f}..{summary['score_max']:.2f}"
    )
    if args.graph:
        graph = load_graph(args.graph)
        print(estimate_plan(pattern, plan, graph).describe())
    else:
        for i, unit in enumerate(plan.units):
            leaves = ",".join(map(str, unit.leaves))
            print(
                f"  round {i}: pivot u{unit.pivot} -> leaves {{{leaves}}}"
                f" ({unit.num_verification_edges} verification edges)"
            )
    print(f"matching order: {plan.matching_order()}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    query = _resolve_query_maybe_labeled(args.query)
    try:
        engine = default_registry().create(args.engine)
    except UnknownEngineError as exc:
        raise SystemExit(str(exc))
    graph = load_graph(args.graph) if args.graph else None
    explanation = engine.explain(query, graph=graph)
    if args.json:
        print(json.dumps(explanation.to_dict(), sort_keys=True))
    else:
        print(explanation)
    return 0


def _cmd_labeled(args: argparse.Namespace) -> int:
    from repro.enumeration.backtracking import EnumerationStats
    from repro.enumeration.labeled import LabeledPattern, labeled_embeddings
    from repro.graph.labeled import label_randomly

    graph = load_graph(args.graph)
    query = _resolve_query_maybe_labeled(args.query)
    data = label_randomly(graph, args.num_labels, seed=args.label_seed)
    if isinstance(query, LabeledPattern):
        # Labels came through the DSL ("a:0-b:1, ..."); --query-labels
        # would be a second, conflicting source.
        if args.query_labels is not None:
            raise SystemExit(
                f"query {args.query!r} already carries labels; "
                f"drop --query-labels"
            )
        pattern, qlabels = query.pattern, list(query.labels)
    else:
        pattern = query
        if args.query_labels is None:
            raise SystemExit(
                "--query-labels is required for unlabeled queries "
                "(or label the DSL: 'a:0-b:1, ...')"
            )
        try:
            qlabels = [int(x) for x in args.query_labels.split(",")]
        except ValueError:
            raise SystemExit(
                "--query-labels must be comma-separated integers"
            )
    if len(qlabels) != pattern.num_vertices:
        raise SystemExit(
            f"query {args.query!r} needs {pattern.num_vertices} labels, "
            f"got {len(qlabels)}"
        )
    if any(not 0 <= x < args.num_labels for x in qlabels):
        raise SystemExit(
            f"query labels must lie in [0, {args.num_labels})"
        )
    stats = EnumerationStats()
    matches = labeled_embeddings(
        data, LabeledPattern(pattern, qlabels),
        limit=args.limit, stats=stats,
    )
    print(
        f"{len(matches)} labeled embeddings of {pattern.name} "
        f"(labels {qlabels}) in {data}"
    )
    print(
        f"backtracking calls: {stats.recursive_calls}, "
        f"candidates scanned: {stats.candidates_scanned}"
    )
    for emb in sorted(matches)[: args.show]:
        print("  ", emb)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.graph import diameter_lower_bound, triangle_count

    graph = load_graph(args.graph)
    print(f"vertices: {graph.num_vertices}")
    print(f"edges: {graph.num_edges}")
    print(f"average degree: {graph.average_degree():.2f}")
    print(f"max degree: {int(graph.degrees().max())}")
    print(f"diameter (lower bound): {diameter_lower_bound(graph)}")
    if graph.num_edges < 500_000:
        print(f"triangles: {triangle_count(graph)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RADS distributed subgraph enumeration (VLDB 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset")
    gen.add_argument("--dataset", choices=sorted(DATASETS), required=True)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=_cmd_generate)

    enum = sub.add_parser("enumerate", help="run an engine on a graph")
    enum.add_argument("--graph", required=True)
    enum.add_argument("--query", required=True)
    enum.add_argument("--engine", default="RADS")
    enum.add_argument("--machines", type=int, default=10)
    enum.add_argument("--memory-mb", type=int, default=None)
    enum.add_argument("--straggler", type=float, default=1.0,
                      help="slow machine 0 down by this factor")
    enum.add_argument("--workers", type=int, default=0,
                      help="execute independent per-machine work on N OS "
                           "processes sharing the graph via shared memory "
                           "(0 = serial, the default); embedding counts "
                           "are identical for every worker count")
    enum.add_argument("--show", type=int, default=0,
                      help="print up to N embeddings")
    enum.add_argument("--json", action="store_true",
                      help="emit the run as one JSON document "
                           "(RunResult.to_dict plus the active config)")
    enum.set_defaults(func=_cmd_enumerate)

    plan = sub.add_parser("plan", help="inspect execution plans for a query")
    plan.add_argument("--query", required=True)
    plan.add_argument("--graph", default=None,
                      help="optional graph for cardinality estimates")
    plan.set_defaults(func=_cmd_plan)

    explain = sub.add_parser(
        "explain",
        help="explain how an engine would run a query "
             "(decomposition, matching order, symmetry, plan ranking)",
    )
    explain.add_argument("--query", required=True,
                         help="registered name or edge-list DSL")
    explain.add_argument("--engine", default="RADS")
    explain.add_argument("--graph", default=None,
                         help="optional graph for per-round cost estimates")
    explain.add_argument("--json", action="store_true",
                         help="emit QueryExplanation.to_dict() as one "
                              "JSON document")
    explain.set_defaults(func=_cmd_explain)

    labeled = sub.add_parser(
        "labeled", help="labeled matching with synthetic labels"
    )
    labeled.add_argument("--graph", required=True)
    labeled.add_argument("--query", required=True)
    labeled.add_argument("--query-labels", default=None,
                         help="comma-separated label per query vertex "
                              "(omit when the DSL query carries labels)")
    labeled.add_argument("--num-labels", type=int, default=3)
    labeled.add_argument("--label-seed", type=int, default=0)
    labeled.add_argument("--limit", type=int, default=None)
    labeled.add_argument("--show", type=int, default=0)
    labeled.set_defaults(func=_cmd_labeled)

    profile = sub.add_parser("profile", help="print graph statistics")
    profile.add_argument("--graph", required=True)
    profile.set_defaults(func=_cmd_profile)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
