"""Command-line interface.

Four subcommands cover the library's workflows end to end::

    python -m repro generate --dataset roadnet --out road.npz
    python -m repro enumerate --graph road.npz --query q4 --engine RADS \
        --machines 10 --workers 4
    python -m repro plan --query q5 [--graph road.npz]
    python -m repro profile --graph road.npz

``--workers N`` runs the simulated machines' independent work on ``N``
OS processes (the :mod:`repro.runtime` process-pool backend); results are
identical to the default serial execution.

Graphs are read by extension: ``.npz`` (binary CSR), ``.edges`` (SNAP edge
list) or ``.adj`` (adjacency text).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.datasets import DATASETS, dataset
from repro.bench.harness import make_cluster
from repro.engines import extended_engines
from repro.engines.single import SingleMachineEngine
from repro.graph.graph import Graph
from repro.graph.io import (
    load_adjacency_text,
    load_binary,
    load_edge_list,
    save_adjacency_text,
    save_binary,
    save_edge_list,
)
from repro.query import best_execution_plan, named_patterns
from repro.query.plan_stats import estimate_plan, plan_space_summary
from repro.runtime import get_executor


def load_graph(path: str) -> Graph:
    """Load a graph, dispatching on the file extension."""
    if path.endswith(".npz"):
        return load_binary(path)
    if path.endswith(".edges"):
        return load_edge_list(path)
    if path.endswith(".adj"):
        return load_adjacency_text(path)
    raise SystemExit(f"unknown graph format: {path} (.npz/.edges/.adj)")


def save_graph(graph: Graph, path: str) -> int:
    """Save a graph, dispatching on the file extension."""
    if path.endswith(".npz"):
        return save_binary(graph, path)
    if path.endswith(".edges"):
        return save_edge_list(graph, path)
    if path.endswith(".adj"):
        return save_adjacency_text(graph, path)
    raise SystemExit(f"unknown graph format: {path} (.npz/.edges/.adj)")


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = dataset(args.dataset, args.scale)
    nbytes = save_graph(graph, args.out)
    print(
        f"{args.dataset} (scale {args.scale}): {graph} "
        f"-> {args.out} ({nbytes} bytes)"
    )
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    pattern = named_patterns().get(args.query)
    if pattern is None:
        raise SystemExit(
            f"unknown query {args.query!r}; choose from "
            f"{sorted(named_patterns())}"
        )
    engines = {**extended_engines(), "Single": SingleMachineEngine}
    engine_cls = engines.get(args.engine)
    if engine_cls is None:
        raise SystemExit(
            f"unknown engine {args.engine!r}; choose from {sorted(engines)}"
        )
    cluster = make_cluster(
        graph,
        args.machines,
        memory_capacity=(
            args.memory_mb * 1024 * 1024 if args.memory_mb else None
        ),
    )
    if args.straggler > 1.0:
        cluster.set_speed_factor(0, 1.0 / args.straggler)
    with get_executor(args.workers) as executor:
        result = engine_cls().run(
            cluster, pattern,
            collect_embeddings=args.show > 0,
            executor=executor,
        )
    if result.failed:
        print(f"FAILED: {result.failure}")
        return 1
    print(result.summary())
    for emb in sorted(result.embeddings or [])[: args.show]:
        print("  ", emb)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    pattern = named_patterns().get(args.query)
    if pattern is None:
        raise SystemExit(f"unknown query {args.query!r}")
    plan = best_execution_plan(pattern)
    print(f"query {pattern.name}: |V|={pattern.num_vertices} "
          f"|E|={pattern.num_edges}")
    summary = plan_space_summary(pattern)
    print(
        f"plan space: {summary['num_plans']} minimum-round plans "
        f"({summary['rounds']} rounds), scores "
        f"{summary['score_min']:.2f}..{summary['score_max']:.2f}"
    )
    if args.graph:
        graph = load_graph(args.graph)
        print(estimate_plan(pattern, plan, graph).describe())
    else:
        for i, unit in enumerate(plan.units):
            leaves = ",".join(map(str, unit.leaves))
            print(
                f"  round {i}: pivot u{unit.pivot} -> leaves {{{leaves}}}"
                f" ({unit.num_verification_edges} verification edges)"
            )
    print(f"matching order: {plan.matching_order()}")
    return 0


def _cmd_labeled(args: argparse.Namespace) -> int:
    from repro.enumeration.backtracking import EnumerationStats
    from repro.enumeration.labeled import LabeledPattern, labeled_embeddings
    from repro.graph.labeled import label_randomly

    graph = load_graph(args.graph)
    pattern = named_patterns().get(args.query)
    if pattern is None:
        raise SystemExit(f"unknown query {args.query!r}")
    data = label_randomly(graph, args.num_labels, seed=args.label_seed)
    try:
        qlabels = [int(x) for x in args.query_labels.split(",")]
    except ValueError:
        raise SystemExit("--query-labels must be comma-separated integers")
    if len(qlabels) != pattern.num_vertices:
        raise SystemExit(
            f"query {args.query!r} needs {pattern.num_vertices} labels, "
            f"got {len(qlabels)}"
        )
    if any(not 0 <= x < args.num_labels for x in qlabels):
        raise SystemExit(
            f"query labels must lie in [0, {args.num_labels})"
        )
    stats = EnumerationStats()
    matches = labeled_embeddings(
        data, LabeledPattern(pattern, qlabels),
        limit=args.limit, stats=stats,
    )
    print(
        f"{len(matches)} labeled embeddings of {pattern.name} "
        f"(labels {qlabels}) in {data}"
    )
    print(
        f"backtracking calls: {stats.recursive_calls}, "
        f"candidates scanned: {stats.candidates_scanned}"
    )
    for emb in sorted(matches)[: args.show]:
        print("  ", emb)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.graph import diameter_lower_bound, triangle_count

    graph = load_graph(args.graph)
    print(f"vertices: {graph.num_vertices}")
    print(f"edges: {graph.num_edges}")
    print(f"average degree: {graph.average_degree():.2f}")
    print(f"max degree: {int(graph.degrees().max())}")
    print(f"diameter (lower bound): {diameter_lower_bound(graph)}")
    if graph.num_edges < 500_000:
        print(f"triangles: {triangle_count(graph)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RADS distributed subgraph enumeration (VLDB 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset")
    gen.add_argument("--dataset", choices=sorted(DATASETS), required=True)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=_cmd_generate)

    enum = sub.add_parser("enumerate", help="run an engine on a graph")
    enum.add_argument("--graph", required=True)
    enum.add_argument("--query", required=True)
    enum.add_argument("--engine", default="RADS")
    enum.add_argument("--machines", type=int, default=10)
    enum.add_argument("--memory-mb", type=int, default=None)
    enum.add_argument("--straggler", type=float, default=1.0,
                      help="slow machine 0 down by this factor")
    enum.add_argument("--workers", type=int, default=0,
                      help="execute independent per-machine work on N OS "
                           "processes sharing the graph via shared memory "
                           "(0 = serial, the default); embedding counts "
                           "are identical for every worker count")
    enum.add_argument("--show", type=int, default=0,
                      help="print up to N embeddings")
    enum.set_defaults(func=_cmd_enumerate)

    plan = sub.add_parser("plan", help="inspect execution plans for a query")
    plan.add_argument("--query", required=True)
    plan.add_argument("--graph", default=None,
                      help="optional graph for cardinality estimates")
    plan.set_defaults(func=_cmd_plan)

    labeled = sub.add_parser(
        "labeled", help="labeled matching with synthetic labels"
    )
    labeled.add_argument("--graph", required=True)
    labeled.add_argument("--query", required=True)
    labeled.add_argument("--query-labels", required=True,
                         help="comma-separated label per query vertex")
    labeled.add_argument("--num-labels", type=int, default=3)
    labeled.add_argument("--label-seed", type=int, default=0)
    labeled.add_argument("--limit", type=int, default=None)
    labeled.add_argument("--show", type=int, default=0)
    labeled.set_defaults(func=_cmd_labeled)

    profile = sub.add_parser("profile", help="print graph statistics")
    profile.add_argument("--graph", required=True)
    profile.set_defaults(func=_cmd_profile)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
