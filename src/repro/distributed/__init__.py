"""Distributed shard runtime: run the simulated cluster across hosts.

This package is the socket-transport counterpart of :mod:`repro.runtime`
(PR 1's executor abstraction) built on :mod:`repro.service`'s JSON-lines
wire format (PR 4):

- :class:`~repro.distributed.worker.ShardWorker` — a long-lived daemon
  (``repro worker --port P``) holding the CSR graph + ownership map
  locally and executing cluster tasks in its own process pool.
- :class:`~repro.distributed.coordinator.ShardCoordinator` — roster
  management: versioned handshakes, graph shipping cached by
  ``Graph.fingerprint()``, heartbeats, per-shard in-flight windows, and
  resubmission of a dead or hung shard's outstanding tasks.
- :class:`~repro.distributed.executor.SocketExecutor` — the
  :class:`~repro.runtime.executor.Executor` backend engines actually
  see; deltas merge in task order so results are bit-identical to the
  serial and process backends.

Select the backend with ``RunConfig(backend="socket", shards=[...])``,
``Session.backend("socket", shards=[...])``, or
``repro run --backend socket --shards host:port,...``.  See the
"Distributed shards" section of ROADMAP.md for the wire schema, failure
semantics and shard lifecycle.
"""

from repro.distributed.coordinator import DistributedError, ShardCoordinator
from repro.distributed.executor import SocketExecutor
from repro.distributed.protocol import WORKER_PROTOCOL_VERSION
from repro.distributed.registry import ShardRegistry
from repro.distributed.worker import ShardWorker, stop_worker

__all__ = [
    "DistributedError",
    "ShardCoordinator",
    "ShardRegistry",
    "ShardWorker",
    "SocketExecutor",
    "WORKER_PROTOCOL_VERSION",
    "stop_worker",
]
