"""Dynamic shard registry: workers announce themselves, rosters follow.

:class:`ShardRegistry` is the membership book behind the elastic socket
backend.  Shard workers started with ``repro worker --announce host:port``
periodically send an ``announce`` op to the query server; the server
records each announcement here, and every
:class:`~repro.distributed.coordinator.ShardCoordinator` built with
``registry=`` reconciles its connection roster against the book at batch
boundaries — so the roster grows when a worker announces, shrinks when
one withdraws (or goes stale), and a replacement worker joins a running
server without a restart.

The registry is deliberately passive: it never opens connections itself.
It answers three questions —

- :meth:`addresses`: which workers are currently announced (non-stale)?
- :meth:`snapshot`: per-worker health (announce counts, heartbeat age,
  held graphs) for the ``metrics`` op;
- :meth:`version`: a membership edit counter, bumped on joins and
  withdrawals (re-announcements refresh timestamps without bumping), so
  pollers can skip reconciliation cheaply.

Entries older than ``stale_after`` seconds (roughly three announce
intervals by default) stop being offered to coordinators but stay in
:meth:`snapshot` flagged ``stale`` until they re-announce or are
withdrawn — an operator looking at metrics should see a silent worker,
not a vanished one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.service.protocol import parse_address

__all__ = ["ShardRegistry"]

#: Default staleness horizon — three times the default worker
#: re-announce interval (see ``ShardWorker(announce_interval=...)``).
DEFAULT_STALE_AFTER = 45.0


@dataclass
class _Entry:
    """One announced worker: liveness timestamps plus advertised state."""

    address: str
    first_seen: float
    last_seen: float
    announces: int = 0
    graphs: tuple[str, ...] = ()
    workers: int | None = None
    pid: int | None = None
    extra: dict[str, Any] = field(default_factory=dict)


class ShardRegistry:
    """Thread-safe book of announced shard workers.

    ``stale_after`` (seconds, ``None`` = never) bounds how long a worker
    is offered to coordinators after its last announcement; ``clock`` is
    injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        stale_after: float | None = DEFAULT_STALE_AFTER,
        clock: Callable[[], float] = time.monotonic,
    ):
        if stale_after is not None and stale_after <= 0:
            raise ValueError(
                f"stale_after must be positive or None, got {stale_after}"
            )
        self.stale_after = stale_after
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}
        self._version = 0

    # ------------------------------------------------------------------
    def announce(
        self,
        address: "tuple[str, int] | str | int",
        *,
        graphs: Iterable[str] = (),
        workers: int | None = None,
        pid: int | None = None,
        **extra: Any,
    ) -> int:
        """Record one announcement; returns the registry version.

        A new address is a membership edit (version bump); a re-announce
        refreshes the entry's timestamp and advertised state in place.
        """
        host, port = parse_address(address)
        name = f"{host}:{port}"
        now = self._clock()
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                entry = _Entry(address=name, first_seen=now, last_seen=now)
                self._entries[name] = entry
                self._version += 1
            entry.last_seen = now
            entry.announces += 1
            entry.graphs = tuple(graphs)
            entry.workers = workers
            entry.pid = pid
            entry.extra = dict(extra)
            return self._version

    def withdraw(self, address: "tuple[str, int] | str | int") -> bool:
        """Remove a worker from the book (polite scale-down, not a fault)."""
        host, port = parse_address(address)
        name = f"{host}:{port}"
        with self._lock:
            if self._entries.pop(name, None) is None:
                return False
            self._version += 1
            return True

    # ------------------------------------------------------------------
    def _stale(self, entry: _Entry, now: float) -> bool:
        return (
            self.stale_after is not None
            and now - entry.last_seen >= self.stale_after
        )

    def addresses(self) -> list[str]:
        """Announced, non-stale worker addresses in announce order."""
        now = self._clock()
        with self._lock:
            return [
                entry.address
                for entry in self._entries.values()
                if not self._stale(entry, now)
            ]

    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-safe health view of every entry (stale ones flagged)."""
        now = self._clock()
        with self._lock:
            return [
                {
                    "address": entry.address,
                    "age_seconds": round(max(0.0, now - entry.last_seen), 3),
                    "announces": entry.announces,
                    "graphs": list(entry.graphs),
                    "workers": entry.workers,
                    "pid": entry.pid,
                    "stale": self._stale(entry, now),
                }
                for entry in self._entries.values()
            ]

    def announces(self, address: str) -> int:
        """Total announcements seen for ``address`` (0 when unknown).

        Coordinators use this as a clock-free rejoin signal: a dead
        roster member whose announce count advanced has restarted (or
        been replaced) and is worth reconnecting.
        """
        with self._lock:
            entry = self._entries.get(address)
            return 0 if entry is None else entry.announces

    def version(self) -> int:
        """Membership edit count (joins + withdrawals)."""
        with self._lock:
            return self._version

    def __len__(self) -> int:
        """Announced, non-stale worker count."""
        return len(self.addresses())

    def clear(self) -> None:
        """Forget every entry (a membership edit when any existed)."""
        with self._lock:
            if self._entries:
                self._version += 1
            self._entries.clear()
