"""Fault-tolerant shard roster: handshakes, heartbeats, batch dispatch.

:class:`ShardCoordinator` owns the coordinator side of the socket
backend.  It connects to a roster of :class:`~repro.distributed.worker.ShardWorker`
daemons, verifies each handshake (protocol version + role), binds every
worker to the active cluster's partition (shipping the graph once per
worker, cached by fingerprint), and drives batches of tasks with a
bounded per-shard in-flight window.

Fault tolerance is scoped to *connection-level* failures — a worker that
dies (EOF, reset) or hangs past ``task_timeout`` is removed from the
roster and its outstanding tasks are resubmitted to the survivors.
Re-execution is safe because every task is a pure function of the
shipped base snapshot, so results stay bit-identical whether or not a
resubmission happened.  Failures *reported by* a healthy worker (a task
raised, a payload would not pickle) are not retried: they propagate in
task order exactly like the process backend.  Losing the whole roster
raises :class:`DistributedError`.

The coordinator keeps cumulative fault counters
(``distributed.resubmits``, ``distributed.lost_workers``) which
:class:`~repro.distributed.executor.SocketExecutor` surfaces on
``RunResult.counters`` whenever they advance.
"""

from __future__ import annotations

import socket
import threading
import time
import weakref
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.distributed import protocol
from repro.distributed.errors import DistributedError
from repro.obs import events as _events
from repro.runtime.delta import capture_state

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.cluster.cluster import Cluster
    from repro.distributed.registry import ShardRegistry
    from repro.partition.partition import GraphPartition

__all__ = ["DistributedError", "ShardCoordinator"]

#: Counter names surfaced on RunResult.counters by the socket backend.
RESUBMITS = "distributed.resubmits"
LOST_WORKERS = "distributed.lost_workers"


class _Shard:
    """One worker connection: socket, streams, liveness, bind state."""

    def __init__(self, address: tuple[str, int], *, managed: bool = False):
        self.address = address
        self.sock: socket.socket | None = None
        self.rfile: Any = None
        self.wfile: Any = None
        self.hello: dict[str, Any] = {}
        self.alive = False
        self.bound_key: tuple | None = None
        self.last_error: str | None = None
        #: True for shards owned by the announce registry (joined via
        #: :meth:`ShardCoordinator._sync_registry`); they leave the
        #: roster politely on withdrawal, unlike configured shards.
        self.managed = managed
        #: The registry announce count last acted on — a dead shard whose
        #: count advanced has restarted and is worth reconnecting.
        self.announces_seen = 0
        #: Serializes use of the connection: a batch drive thread holds it
        #: for the whole batch; the heartbeat probes with a non-blocking
        #: acquire and skips busy shards.
        self.lock = threading.Lock()
        self._next_id = 0

    @property
    def name(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def close(self) -> None:
        for stream in (self.rfile, self.wfile, self.sock):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
        self.sock = self.rfile = self.wfile = None
        self.alive = False


class _Batch:
    """Shared state of one :meth:`ShardCoordinator.run_batch` call.

    Task indices are dealt round-robin into one dedicated *share* per
    shard — so every listed shard is actually exercised each batch and a
    dead one cannot hide behind faster peers — plus a shared overflow
    ``pool`` that receives a failed shard's outstanding work and feeds
    any shard whose own share has drained (work stealing keeps the batch
    work-conserving after a loss).

    ``ctx_data`` is the packed ``(base snapshot, task fn)`` pair — packed
    once here and shipped once per shard (on its first task message,
    tagged ``token``), never once per task: the snapshot grows with the
    cluster, so per-task shipping would make batch serialization and wire
    bytes quadratic in the machine count.

    ``trace`` is the JSON-safe span-propagation context of a traced run
    (:func:`repro.obs.trace.wire_context`) or ``None``; when set it rides
    on every task message, and the workers' finished span dicts shipped
    back beside results accumulate in ``spans``.  ``profile`` marks a
    profiled batch the same way: every task message carries
    ``profile: true``, and the workers' rusage rows shipped back beside
    results accumulate in ``usage``.
    """

    def __init__(
        self,
        token: str,
        ctx_data: str,
        tasks: Sequence[Any],
        shard_names: Sequence[str],
        trace: "dict[str, str] | None" = None,
        profile: bool = False,
    ):
        self.token = token
        self.ctx_data = ctx_data
        self.tasks = tasks
        self.trace = trace
        self.profile = profile
        self.spans: list[dict] = []
        self.usage: list[dict] = []
        self.cond = threading.Condition()
        self.shares: dict[str, deque[int]] = {
            name: deque() for name in shard_names
        }
        for index in range(len(tasks)):
            self.shares[shard_names[index % len(shard_names)]].append(index)
        self.pool: deque[int] = deque()
        self.results: dict[int, tuple] = {}
        self.failure: BaseException | None = None
        #: True when the failure was a total roster loss — the one
        #: failure mode a registry-backed run_batch may retry (pure
        #: tasks; nothing was delivered).
        self.roster_lost = False
        self.done = not tasks

    def take(self, name: str) -> int | None:
        """Next task index for shard ``name`` (own share, then the pool)."""
        share = self.shares[name]
        if share:
            return share.popleft()
        if self.pool:
            return self.pool.popleft()
        return None

    def has_work(self, name: str) -> bool:
        return bool(self.shares[name] or self.pool)


class ShardCoordinator:
    """Manages the worker roster and dispatches task batches.

    Parameters
    ----------
    shards:
        Worker addresses — ``(host, port)`` tuples, ``"host:port"``
        strings, or bare port numbers (localhost).
    window:
        Per-shard in-flight task cap (pipelining depth).
    connect_timeout:
        Seconds allowed for TCP connect + handshake per worker.
    task_timeout:
        Seconds to wait for any single response before declaring the
        shard *hung* and resubmitting its work (``None`` = trust EOF).
    ship_graph:
        Ship the data graph to workers that do not hold it (cached by
        fingerprint, so each worker receives it at most once).  With
        ``False`` a worker lacking the graph is a handshake rejection:
        :class:`DistributedError` naming the expected and held
        fingerprints.
    heartbeat_interval:
        Seconds between background pings of idle workers (``None`` = no
        heartbeat thread); a worker that fails a ping leaves the roster.
    registry:
        A :class:`~repro.distributed.registry.ShardRegistry` making the
        roster *elastic*: announced workers join as managed shards at
        batch boundaries, withdrawn (or stale-and-dead) managed shards
        leave politely, and a dead shard whose announce count advanced
        is reconnected (a restart/replacement on the same address).
        With a registry ``shards`` may be empty and an unreachable
        initial roster is not fatal — the coordinator waits for
        announcements instead.
    rejoin_timeout:
        Seconds :meth:`run_batch` waits for a replacement worker to
        announce after the whole roster is lost (registry mode only)
        before giving up with :class:`DistributedError`.
    """

    def __init__(
        self,
        shards: Sequence["tuple[str, int] | str | int"],
        *,
        window: int = 4,
        connect_timeout: float = 10.0,
        task_timeout: float | None = 600.0,
        ship_graph: bool = True,
        heartbeat_interval: float | None = None,
        registry: "ShardRegistry | None" = None,
        rejoin_timeout: float = 10.0,
    ):
        if not shards and registry is None:
            raise DistributedError("the shard roster is empty")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.connect_timeout = connect_timeout
        self.task_timeout = task_timeout
        self.ship_graph = ship_graph
        self.registry = registry
        self.rejoin_timeout = rejoin_timeout
        self._shards = [_Shard(protocol.parse_address(a)) for a in shards]
        self._counters = {RESUBMITS: 0, LOST_WORKERS: 0}
        self._counter_lock = threading.Lock()
        self._batch_lock = threading.Lock()
        #: Worker span dicts from the most recent traced batch, consumed
        #: by :meth:`take_worker_spans` (guarded by ``_batch_lock``).
        self._worker_spans: list[dict] = []
        #: Worker rusage rows from the most recent profiled batch,
        #: consumed by :meth:`take_worker_usage` (same guard).
        self._worker_usage: list[dict] = []
        #: Serializes roster edits (registry syncs) against each other;
        #: readers (live_shards, close) see atomic list swaps.
        self._roster_lock = threading.Lock()
        self._batch_seq = 0
        self._closed = False
        # Fingerprint/owner digests are cached per partition object (the
        # hashes cover whole CSR/owner arrays; compute once, not per batch).
        self._bind_cache: "weakref.WeakKeyDictionary[GraphPartition, tuple[str, str]]" = (
            weakref.WeakKeyDictionary()
        )
        for shard in self._shards:
            try:
                self._connect(shard)
            except (OSError, protocol.ProtocolError) as exc:
                self._lose(shard, exc)
        self._sync_registry()
        if not self.live_shards() and registry is None:
            detail = "; ".join(
                f"{s.name}: {s.last_error}" for s in self._shards
            )
            raise DistributedError(
                f"no shard worker reachable out of {len(self._shards)} "
                f"({detail})"
            )
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        if heartbeat_interval is not None:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(heartbeat_interval,),
                name="repro-shard-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()

    # ------------------------------------------------------------------
    # Roster
    # ------------------------------------------------------------------
    def live_shards(self) -> list[_Shard]:
        """Roster members still believed alive."""
        return [shard for shard in self._shards if shard.alive]

    @property
    def counters(self) -> dict[str, int]:
        """Cumulative fault counters (resubmits, lost workers)."""
        with self._counter_lock:
            return dict(self._counters)

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._counter_lock:
            self._counters[counter] += amount

    def _connect(self, shard: _Shard) -> None:
        """TCP connect + handshake verification (version and role)."""
        sock = socket.create_connection(
            shard.address, timeout=self.connect_timeout
        )
        shard.sock = sock
        shard.rfile = sock.makefile("rb")
        shard.wfile = sock.makefile("wb")
        hello = protocol.read_message(shard.rfile)
        if not hello or hello.get("kind") != "hello":
            shard.close()
            raise protocol.ProtocolError(
                f"no hello from {shard.name}; is that a repro shard worker?"
            )
        if hello.get("role") != protocol.WORKER_ROLE:
            shard.close()
            raise protocol.ProtocolError(
                f"{shard.name} is a {hello.get('role', 'unknown')!r} "
                f"endpoint, not a shard worker"
            )
        if hello.get("version") != protocol.WORKER_PROTOCOL_VERSION:
            shard.close()
            raise protocol.ProtocolError(
                f"protocol version mismatch at {shard.name}: worker speaks "
                f"{hello.get('version')}, coordinator "
                f"{protocol.WORKER_PROTOCOL_VERSION}"
            )
        sock.settimeout(self.task_timeout)
        shard.hello = hello
        shard.alive = True
        shard.last_error = None

    def _lose(
        self,
        shard: _Shard,
        exc: BaseException,
        *,
        count: bool = True,
        trace_id: str | None = None,
    ) -> None:
        """Remove a shard from the roster (fault path).

        Counted whether the shard died mid-service or never answered the
        initial handshake: a roster member the operator configured but
        cannot be used is a lost worker either way (the executor surfaces
        the counter on the next run's results).  Idempotent — a shard the
        heartbeat already buried (callers race it for ``shard.lock``) is
        not re-counted and keeps its original cause of death.  With
        ``count=False`` (a managed shard whose announced join could not
        be connected yet) the removal is not a fault.

        Counted losses are journaled as ``worker.lost``; ``trace_id``
        ties the event to the request whose batch hit the fault (drive
        threads pass the batch's wire context id — context variables do
        not cross into them).
        """
        if not shard.alive and shard.last_error is not None:
            return
        shard.last_error = f"{type(exc).__name__}: {exc}"
        shard.close()
        if count:
            self._bump(LOST_WORKERS)
            _events.emit(
                "error",
                "coordinator",
                _events.WORKER_LOST,
                trace_id=trace_id,
                address=shard.name,
                error=shard.last_error,
                managed=shard.managed,
            )

    # ------------------------------------------------------------------
    # Elastic roster (announce registry)
    # ------------------------------------------------------------------
    def _sync_registry(self) -> None:
        """Reconcile the connection roster with the announce registry.

        Runs at batch boundaries (and from :meth:`run_batch`'s rejoin
        wait): a newly announced address joins as a managed shard; a
        dead shard — managed or configured — whose announce count
        advanced since its death is reconnected (the worker restarted or
        was replaced on the same address; it must rebind); a managed
        shard withdrawn from the registry, or both stale there and dead
        here, leaves politely without touching the fault counters.
        """
        if self.registry is None:
            return
        with self._roster_lock:
            entries = {
                entry["address"]: entry
                for entry in self.registry.snapshot()
            }
            kept: list[_Shard] = []
            for shard in self._shards:
                entry = entries.get(shard.name)
                if shard.managed and (
                    entry is None or (entry["stale"] and not shard.alive)
                ):
                    with shard.lock:
                        shard.close()
                    if entry is None:
                        _events.emit(
                            "info",
                            "coordinator",
                            _events.WORKER_LEFT,
                            address=shard.name,
                        )
                    else:
                        _events.emit(
                            "warning",
                            "coordinator",
                            _events.WORKER_STALE,
                            address=shard.name,
                            age_seconds=entry.get("age_seconds"),
                        )
                    continue
                kept.append(shard)
            self._shards = kept
            known = {shard.name: shard for shard in self._shards}
            for name, entry in entries.items():
                if entry["stale"]:
                    continue
                shard = known.get(name)
                if shard is None:
                    shard = _Shard(
                        protocol.parse_address(name), managed=True
                    )
                    shard.announces_seen = entry["announces"]
                    self._shards.append(shard)
                    try:
                        self._connect(shard)
                        _events.emit(
                            "info",
                            "coordinator",
                            _events.WORKER_JOINED,
                            address=shard.name,
                        )
                    except (OSError, protocol.ProtocolError) as exc:
                        self._lose(shard, exc, count=False)
                elif not shard.alive and (
                    entry["announces"] > shard.announces_seen
                ):
                    shard.announces_seen = entry["announces"]
                    with shard.lock:
                        shard.close()
                        try:
                            self._connect(shard)
                            shard.bound_key = None
                            shard.last_error = None
                            _events.emit(
                                "info",
                                "coordinator",
                                _events.WORKER_JOINED,
                                address=shard.name,
                                rejoined=True,
                            )
                        except (OSError, protocol.ProtocolError) as exc:
                            self._lose(shard, exc, count=False)
                elif shard.alive:
                    shard.announces_seen = max(
                        shard.announces_seen, entry["announces"]
                    )

    def _await_roster(self, cluster: "Cluster") -> bool:
        """Wait for a usable (live, bound) shard via the registry.

        Polls the registry for up to ``rejoin_timeout`` seconds; returns
        True once a live shard is connected and bound, False on timeout
        (or immediately when there is no registry to wait on).
        """
        if self.registry is None:
            return False
        deadline = time.monotonic() + self.rejoin_timeout
        while True:
            self._sync_registry()
            self._ensure_bound(cluster)
            if self.live_shards():
                return True
            if time.monotonic() >= deadline or self._closed:
                return False
            time.sleep(0.2)

    # ------------------------------------------------------------------
    # Request/response plumbing (caller holds shard.lock)
    # ------------------------------------------------------------------
    def _request(
        self, shard: _Shard, message: dict[str, Any]
    ) -> dict[str, Any]:
        """One synchronous request on an otherwise idle connection."""
        protocol.write_message(shard.wfile, message)
        return self._read(shard, expect=message["id"])

    def _read(
        self, shard: _Shard, *, expect: int | None = None
    ) -> dict[str, Any]:
        response = protocol.read_message(shard.rfile)
        if response is None:
            raise protocol.ProtocolError(
                f"shard {shard.name} closed the connection"
            )
        if expect is not None and response.get("id") != expect:
            raise protocol.ProtocolError(
                f"out-of-sync response from {shard.name}: expected id "
                f"{expect}, got {response.get('id')}"
            )
        return response

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def _bind_payload(self, cluster: "Cluster") -> tuple[str, str]:
        """(graph fingerprint, owner digest) for a cluster's partition."""
        from repro.distributed.worker import owner_digest

        partition = cluster.partition
        cached = self._bind_cache.get(partition)
        if cached is None:
            cached = (
                partition.graph.fingerprint(),
                owner_digest(partition.owner),
            )
            self._bind_cache[partition] = cached
        return cached

    def _ensure_bound(self, cluster: "Cluster") -> None:
        """Bind every live shard to ``cluster``'s partition + cost model."""
        fingerprint, owners = self._bind_payload(cluster)
        key = (
            fingerprint, owners, cluster.cost_model, cluster.memory_capacity
        )
        # Bind payloads packed at most once per sweep, not once per shard
        # — the ownership map is O(|V|) and a shipped graph is the whole
        # CSR.  Scoped to this call so the coordinator never retains a
        # second full-graph encoding between binds.
        packed: dict[str, str] = {}
        for shard in self.live_shards():
            if shard.bound_key == key:
                continue
            with shard.lock:
                if not shard.alive:
                    continue  # lost by the heartbeat since the snapshot
                try:
                    self._bind(shard, cluster, fingerprint, packed)
                    shard.bound_key = key
                except (OSError, protocol.ProtocolError) as exc:
                    self._lose(shard, exc)

    def _bind(
        self,
        shard: _Shard,
        cluster: "Cluster",
        fingerprint: str,
        packed: dict[str, str],
    ) -> None:
        data = packed.get("data")
        if data is None:
            data = packed["data"] = protocol.pack({
                "owner": cluster.partition.owner,
                "cost_model": cluster.cost_model,
                "memory_capacity": cluster.memory_capacity,
            })
        message = {
            "op": "bind",
            "id": shard.next_id(),
            "fingerprint": fingerprint,
            "data": data,
        }
        response = self._request(shard, message)
        if response.get("ok"):
            return
        if response.get("code") != "need-graph":
            raise DistributedError(
                f"shard {shard.name} rejected the bind: "
                f"{response.get('error')}"
            )
        if not self.ship_graph:
            held = response.get("have") or []
            raise DistributedError(
                f"graph fingerprint mismatch at shard {shard.name}: "
                f"coordinator expects {fingerprint!r} but the worker "
                f"holds {held!r} (and graph shipping is disabled)"
            )
        message = dict(message, id=shard.next_id())
        graph_payload = packed.get("graph")
        if graph_payload is None:
            graph_payload = packed["graph"] = protocol.pack(cluster.graph)
        message["graph"] = graph_payload
        response = self._request(shard, message)
        if not response.get("ok"):
            raise DistributedError(
                f"shard {shard.name} rejected the shipped graph: "
                f"{response.get('error')}"
            )

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run_batch(
        self,
        cluster: "Cluster",
        fn: Callable,
        tasks: Sequence[Any],
        *,
        trace: "dict[str, str] | None" = None,
        profile: bool = False,
    ) -> list[tuple]:
        """Run one batch; ``(status, payload, delta)`` per task, in order.

        Tasks are dealt to shard drive threads from one shared queue
        (each thread pipelines up to ``window`` in-flight tasks on its
        connection); a shard that fails mid-batch has its outstanding
        tasks requeued for the survivors.

        ``trace`` (a :func:`repro.obs.trace.wire_context` dict) makes the
        batch *traced*: it rides on every task message, workers emit one
        span per task and ship the finished span dicts back beside their
        results, and the caller collects them afterwards via
        :meth:`take_worker_spans`.  ``profile`` makes it *profiled* the
        same way: workers measure their own rusage delta per task and
        ship the rows back, collected via :meth:`take_worker_usage`.
        """
        if self._closed:
            raise DistributedError("coordinator is closed")
        if not tasks:
            return []
        with self._batch_lock:
            try:
                ctx_data = protocol.pack((capture_state(cluster), fn))
            except Exception as exc:
                # Affects every task identically (like an unpicklable fn
                # at ProcessExecutor's submit): fail the batch loudly.
                raise DistributedError(
                    f"batch context (cluster snapshot + task fn) is not "
                    f"serializable: {exc}"
                ) from exc
            attempts = 0
            while True:
                attempts += 1
                self._sync_registry()
                self._ensure_bound(cluster)
                if not self.live_shards() and not self._await_roster(
                    cluster
                ):
                    raise DistributedError(self._roster_obituary())
                live = self.live_shards()
                self._batch_seq += 1
                batch = _Batch(
                    f"batch-{self._batch_seq}", ctx_data, tasks,
                    [shard.name for shard in live],
                    trace=trace,
                    profile=profile,
                )
                threads = [
                    threading.Thread(
                        target=self._drive,
                        args=(shard, batch),
                        name=f"repro-shard-{shard.name}",
                        daemon=True,
                    )
                    for shard in live
                ]
                for thread in threads:
                    thread.start()
                with batch.cond:
                    while not batch.done:
                        batch.cond.wait()
                    batch.cond.notify_all()
                for thread in threads:
                    thread.join()
                if batch.failure is not None:
                    if (
                        batch.roster_lost
                        and self.registry is not None
                        and attempts < 2
                        and self._await_roster(cluster)
                    ):
                        # The whole roster died mid-batch but a
                        # replacement announced within rejoin_timeout:
                        # tasks are pure functions of the shipped
                        # snapshot, so rerunning the batch is safe (and
                        # bit-identical).
                        _events.emit(
                            "warning",
                            "coordinator",
                            _events.BATCH_RETRY,
                            trace_id=(
                                trace.get("trace_id") if trace else None
                            ),
                            batch=batch.token,
                            tasks=len(tasks),
                            attempt=attempts,
                        )
                        continue
                    raise batch.failure
                self._worker_spans = list(batch.spans)
                self._worker_usage = list(batch.usage)
                return [batch.results[i] for i in range(len(tasks))]

    def take_worker_spans(self) -> list[dict]:
        """Span dicts shipped back by the last traced batch (consumed).

        Empty for untraced batches.  Called by
        :class:`~repro.distributed.executor.SocketExecutor` right after
        :meth:`run_batch` returns, while the batch span is still open,
        so the worker spans fold into the live trace.
        """
        with self._batch_lock:
            spans, self._worker_spans = self._worker_spans, []
            return spans

    def take_worker_usage(self) -> list[dict]:
        """Rusage rows shipped back by the last profiled batch (consumed).

        Empty for unprofiled batches.  The executor folds these into the
        active :class:`~repro.obs.profile.Profiler` right after
        :meth:`run_batch` returns.
        """
        with self._batch_lock:
            usage, self._worker_usage = self._worker_usage, []
            return usage

    def _drive(self, shard: _Shard, batch: _Batch) -> None:
        """One shard's batch loop: deal, pipeline, collect, survive."""
        inflight: dict[int, int] = {}
        ctx_sent = False
        with shard.lock:
            try:
                if not shard.alive:
                    # The heartbeat buried this shard between run_batch's
                    # roster snapshot and this thread acquiring the lock:
                    # take the fault path so its share is rerouted.
                    raise protocol.ProtocolError(
                        "lost before the batch reached it"
                    )
                while True:
                    send_now: list[int] = []
                    with batch.cond:
                        while True:
                            if batch.done:
                                return
                            while len(inflight) + len(send_now) < self.window:
                                index = batch.take(shard.name)
                                if index is None:
                                    break
                                send_now.append(index)
                            if send_now or inflight:
                                break
                            # Idle but the batch is unfinished: stay
                            # available for resubmitted work.
                            batch.cond.wait(timeout=0.1)
                    # Register every dealt index as in-flight *before*
                    # packing or writing anything: if a write fails
                    # mid-loop, the except path below requeues the whole
                    # remainder instead of losing it (which would hang
                    # the batch).
                    dealt = []
                    for index in send_now:
                        message_id = shard.next_id()
                        inflight[message_id] = index
                        dealt.append((message_id, index))
                    for message_id, index in dealt:
                        try:
                            data = protocol.pack(batch.tasks[index])
                        except Exception as exc:
                            # Unserializable task: a per-task failure
                            # (surfaced in task order, like the process
                            # backend), not a shard fault.
                            inflight.pop(message_id)
                            self._record(batch, index, (
                                "transport_error",
                                RuntimeError(
                                    f"task {index} not serializable: {exc}"
                                ),
                                None,
                            ))
                            continue
                        message = {
                            "op": "task", "id": message_id,
                            "batch": batch.token, "data": data,
                        }
                        if batch.trace is not None:
                            message["trace"] = batch.trace
                        if batch.profile:
                            message["profile"] = True
                        if not ctx_sent:
                            # First task this connection sees for the
                            # batch carries the shared (base, fn) context.
                            message["ctx"] = batch.ctx_data
                            ctx_sent = True
                        protocol.write_message(shard.wfile, message)
                    if not inflight:
                        continue
                    response = self._read(shard)
                    if response.get("id") not in inflight:
                        raise protocol.ProtocolError(
                            f"shard {shard.name} answered unknown task id "
                            f"{response.get('id')}"
                        )
                    index = inflight.pop(response["id"])
                    if response.get("ok"):
                        triple = protocol.unpack(response["data"])
                        worker_spans = response.get("spans")
                        worker_usage = response.get("usage")
                        if worker_spans or worker_usage:
                            with batch.cond:
                                if worker_spans:
                                    batch.spans.extend(worker_spans)
                                if worker_usage:
                                    batch.usage.extend(worker_usage)
                    else:
                        # The worker is healthy but the task failed there
                        # (pool crash, unserializable result).  Surfaced
                        # in task order, like the process backend; never
                        # resubmitted (a poison task would cascade).
                        triple = (
                            "transport_error",
                            RuntimeError(
                                f"shard {shard.name}: "
                                f"{response.get('error')}"
                            ),
                            None,
                        )
                    self._record(batch, index, triple)
            except (
                OSError, ValueError, AttributeError, protocol.ProtocolError
            ) as exc:
                # ValueError/AttributeError cover streams a concurrent
                # loss already closed or nulled ("I/O operation on closed
                # file", NoneType writes) — a shard fault, not a bug.
                trace_id = (
                    batch.trace.get("trace_id") if batch.trace else None
                )
                self._lose(shard, exc, trace_id=trace_id)
                with batch.cond:
                    # Outstanding (sent but unanswered) tasks are
                    # resubmitted to the survivors; the dead shard's
                    # unsent share is simply rerouted.
                    if inflight:
                        batch.pool.extend(sorted(inflight.values()))
                        self._bump(RESUBMITS, len(inflight))
                        _events.emit(
                            "warning",
                            "coordinator",
                            _events.BATCH_RESUBMIT,
                            trace_id=trace_id,
                            address=shard.name,
                            batch=batch.token,
                            tasks=len(inflight),
                        )
                    share = batch.shares[shard.name]
                    batch.pool.extend(share)
                    share.clear()
                    if not self.live_shards() and not batch.done:
                        batch.failure = DistributedError(
                            "all shard workers lost mid-batch: "
                            + self._roster_obituary()
                        )
                        batch.roster_lost = True
                        batch.done = True
                    batch.cond.notify_all()
            except BaseException as exc:  # noqa: BLE001 - must not hang
                # A coordinator-side failure (MemoryError, a bug): fail
                # the whole batch loudly — a silently dead drive thread
                # would leave run_batch waiting forever.
                with batch.cond:
                    if not batch.done:
                        batch.failure = exc
                        batch.done = True
                    batch.cond.notify_all()

    @staticmethod
    def _record(batch: _Batch, index: int, triple: tuple) -> None:
        """File one task's result and complete the batch when it is last."""
        with batch.cond:
            batch.results[index] = triple
            if len(batch.results) == len(batch.tasks):
                batch.done = True
            batch.cond.notify_all()

    def _roster_obituary(self) -> str:
        dead = "; ".join(
            f"{shard.name}: {shard.last_error or 'lost'}"
            for shard in self._shards
            if not shard.alive
        )
        if dead:
            return dead
        if self.registry is not None:
            return "no shard workers announced to the registry"
        return "no shards configured"

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def heartbeat(self) -> int:
        """Ping idle live shards once; returns how many answered.

        Busy shards (mid-batch) are skipped — their liveness is proven by
        the batch traffic itself.  A shard failing its ping leaves the
        roster (``distributed.lost_workers``).
        """
        answered = 0
        for shard in self.live_shards():
            if not shard.lock.acquire(blocking=False):
                answered += 1  # busy == demonstrably alive
                continue
            try:
                if not shard.alive:
                    continue  # buried since the roster snapshot
                response = self._request(
                    shard, {"op": "ping", "id": shard.next_id()}
                )
                if not response.get("ok"):
                    raise protocol.ProtocolError(
                        f"ping rejected: {response.get('error')}"
                    )
                answered += 1
            except (OSError, protocol.ProtocolError) as exc:
                self._lose(shard, exc)
            finally:
                shard.lock.release()
        return answered

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._heartbeat_stop.wait(interval):
            if self._closed:
                return
            self.heartbeat()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Disconnect from every worker (the daemons keep running).

        Sockets are shut down *before* taking the per-shard locks: a
        heartbeat (or batch) thread blocked in ``recv`` on a hung shard
        holds its lock for up to ``task_timeout`` — the shutdown forces
        that read to return immediately instead of waiting it out.
        """
        self._closed = True
        self._heartbeat_stop.set()
        for shard in self._shards:
            sock = shard.sock
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=5)
            self._heartbeat_thread = None
        for shard in self._shards:
            with shard.lock:
                shard.close()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
