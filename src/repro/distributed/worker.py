"""Shard worker daemon: executes cluster tasks shipped over TCP.

:class:`ShardWorker` is the remote half of the socket backend.  One
daemon runs per host (``repro worker --port P`` on the CLI), holds the
CSR data graph and ownership map *locally* — preloaded from a path, or
shipped once by a coordinator and cached by ``Graph.fingerprint()`` — and
executes :mod:`repro.runtime` tasks against worker-local cluster
replicas, streaming ``(status, payload, delta)`` triples back for the
coordinator's deterministic task-order merge.

Execution modes:

- ``workers=0`` (default): tasks run inline on a per-connection replica
  cluster, one at a time in arrival order.
- ``workers=N``: tasks fan out over the daemon's own
  ``ProcessPoolExecutor``; the partition is published once into shared
  memory (the PR 1 :mod:`repro.runtime.shared_graph` machinery) and pool
  processes rebuild replicas from it, exactly like the local
  :class:`~repro.runtime.executor.ProcessExecutor`.

Each connection gets two threads: the handler thread *only reads* (so a
pipelining coordinator can always drain its sends — the classic
write/write pipelining deadlock is impossible) and a per-connection executor thread
runs tasks and writes responses.  ``ping``/``stats``/``shutdown`` are
answered inline from the reader; ``bind`` and ``task`` are ordered
through the executor queue (a bind is a barrier w.r.t. in-flight tasks).

:meth:`crash` kills the daemon abruptly — listener and live connections
are torn down with no protocol goodbye — so tests and demos can exercise
the coordinator's fault tolerance deterministically.

With ``announce="host:port"`` the worker joins a query server's elastic
roster: it sends an ``announce`` op to that address on start and every
``announce_interval`` seconds (a background daemon thread), and
withdraws itself on a polite :meth:`close` — but *not* on
:meth:`crash`, so the registry sees exactly what a killed host would
leave behind (a silent entry going stale).
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os
import queue
import socket
import socketserver
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.cluster.cluster import Cluster
from repro.distributed import protocol
from repro.graph.graph import Graph
from repro.obs.profile import task_rusage, worker_usage
from repro.obs.trace import remote_span
from repro.partition.partition import GraphPartition
from repro.runtime.executor import _SpecEntry, _worker_run, execute_task

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.runtime.executor import _ClusterSpec

__all__ = ["ShardWorker", "stop_worker"]

#: Replica clusters cached per connection; evict beyond this many.
_REPLICA_CACHE_LIMIT = 8
#: Daemon-level caches (graphs by fingerprint, partitions, shared-memory
#: specs) are LRU-bounded at this many entries each: a long-lived worker
#: serving many distinct graphs must not grow (or pin /dev/shm segments)
#: without bound.
_DAEMON_CACHE_LIMIT = 8


def _touch_lru(cache: dict, key: Any) -> Any:
    """Return cache[key] (or None), refreshing its insertion-order age."""
    value = cache.pop(key, None)
    if value is not None:
        cache[key] = value
    return value


def owner_digest(owner: np.ndarray) -> str:
    """Content hash of an ownership map (the partition half of bind keys)."""
    digest = hashlib.sha256()
    digest.update(b"owner-map-v1")
    digest.update(np.ascontiguousarray(owner).tobytes())
    return digest.hexdigest()


class _Connection:
    """Per-connection state: bound replica, task queue, executor thread."""

    _SENTINEL = object()

    def __init__(self, worker: "ShardWorker", connection: socket.socket,
                 wfile: Any):
        self.worker = worker
        self.connection = connection
        self._wfile = wfile
        self._write_lock = threading.Lock()
        self._queue: "queue.Queue[Any]" = queue.Queue()
        # Serial mode: replica clusters by bind key, LRU-capped.
        self._replicas: dict[tuple, Cluster] = {}
        self._cluster: Cluster | None = None
        # Pool mode: the shared-memory spec of the bound partition.
        self._spec: "_ClusterSpec | None" = None
        # (token, unpacked (base, fn)) of the current batch: shipped on
        # the first task of each batch, shared by the rest (the snapshot
        # is an immutable frozen dataclass, so reuse is safe).
        self._batch_ctx: tuple[Any, tuple] | None = None
        # In-flight pool futures (bind/close barriers wait on them).
        self._inflight: set = set()
        self._inflight_cond = threading.Condition()
        self._thread = threading.Thread(
            target=self._loop, name="repro-shard-exec", daemon=True
        )
        self._thread.start()

    # -- writing -------------------------------------------------------
    def write(self, message: dict[str, Any]) -> None:
        """Send one response (reader + executor + pool callbacks share)."""
        try:
            with self._write_lock:
                protocol.write_message(self._wfile, message)
        except (OSError, ValueError):
            pass  # connection gone; the reader will notice and close us

    # -- reader side ---------------------------------------------------
    def enqueue(self, message: dict[str, Any]) -> None:
        """Order a bind/task behind everything already accepted."""
        self._queue.put(message)

    def close(self) -> None:
        """Stop the executor thread and drain in-flight pool work."""
        self._queue.put(self._SENTINEL)
        self._thread.join(timeout=30)

    # -- executor side -------------------------------------------------
    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._SENTINEL:
                self._drain_inflight()
                return
            try:
                if item.get("op") == "bind":
                    # Barrier: a re-bind must not race in-flight tasks
                    # that still reference the previous partition's
                    # shared memory.
                    self._drain_inflight()
                    self.write(self._bind(item))
                else:
                    self._task(item)
            except Exception as exc:  # backstop: the thread must survive
                self.write(protocol.error_response(
                    item.get("id"), f"worker-side failure: {exc!r}"
                ))

    def _drain_inflight(self) -> None:
        with self._inflight_cond:
            while self._inflight:
                self._inflight_cond.wait()

    def _bind(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        fingerprint = message.get("fingerprint")
        try:
            payload = protocol.unpack(message["data"])
            owner = payload["owner"]
            cost_model = payload["cost_model"]
            capacity = payload["memory_capacity"]
            shipped = message.get("graph")
            graph = (
                protocol.unpack(shipped) if shipped is not None else None
            )
        except (KeyError, protocol.ProtocolError) as exc:
            return protocol.error_response(
                request_id, f"malformed bind: {exc}"
            )
        try:
            graph, cached = self.worker._graph_for(fingerprint, graph)
        except LookupError as exc:
            response = protocol.error_response(request_id, str(exc))
            response["code"] = "need-graph"
            response["have"] = self.worker.fingerprints()
            return response
        except Exception as exc:  # e.g. shipped-graph fingerprint mismatch
            return protocol.error_response(
                request_id, f"bind rejected: {exc}"
            )
        try:
            partition = self.worker._partition_for(graph, owner)
            key = (fingerprint, owner_digest(owner), cost_model, capacity)
            if self.worker.workers > 0:
                self._spec = self.worker._spec_for(
                    partition, cost_model, capacity
                )
                self._cluster = None
            else:
                self._spec = None
                cluster = self._replicas.get(key)
                if cluster is None:
                    cluster = Cluster(partition, cost_model, capacity)
                    while len(self._replicas) >= _REPLICA_CACHE_LIMIT:
                        self._replicas.pop(next(iter(self._replicas)))
                    self._replicas[key] = cluster
                self._cluster = cluster
        except Exception as exc:
            # e.g. shared-memory publication failing on a full /dev/shm:
            # the connection must answer (the coordinator surfaces the
            # message), not strand the coordinator until its timeout.
            return protocol.error_response(
                request_id, f"bind failed on the worker: {exc}"
            )
        return protocol.ok_response(
            request_id, "bound",
            {"fingerprint": fingerprint, "cached_graph": cached},
        )

    def _task(self, message: dict[str, Any]) -> None:
        request_id = message.get("id")
        trace = message.get("trace")
        profile = bool(message.get("profile"))
        try:
            token = message.get("batch")
            ctx = message.get("ctx")
            if ctx is not None:
                self._batch_ctx = (token, protocol.unpack(ctx))
            args = protocol.unpack(message["data"])
        except (KeyError, TypeError, ValueError, protocol.ProtocolError) as exc:
            self.write(protocol.error_response(
                request_id, f"malformed task: {exc}"
            ))
            return
        if self._batch_ctx is None or self._batch_ctx[0] != token:
            self.write(protocol.error_response(
                request_id,
                f"unknown batch {token!r}: the first task of a batch on "
                f"a connection must carry its ctx payload",
            ))
            return
        base, fn = self._batch_ctx[1]
        if self._spec is None and self._cluster is None:
            self.write(protocol.error_response(
                request_id, "no graph bound on this connection; bind first"
            ))
            return
        self.worker._count_task()
        if self._spec is not None:
            try:
                future = self.worker._pool_submit(
                    self._spec, base, fn, args
                )
            except Exception as exc:
                self.write(protocol.error_response(
                    request_id, f"worker pool unavailable: {exc}"
                ))
                return
            with self._inflight_cond:
                self._inflight.add(future)
            started = time.perf_counter()
            ru0 = task_rusage() if profile else None
            future.add_done_callback(
                lambda f, rid=request_id, tr=trace, t0=started, r0=ru0,
                        pr=profile:
                    self._pool_done(
                        rid, f, trace=tr, started=t0, rusage0=r0, profile=pr
                    )
            )
        elif trace is None and not profile:
            self._respond(request_id, execute_task(
                self._cluster, base, fn, args
            ))
        else:
            started = time.perf_counter()
            ru0 = task_rusage() if profile else None
            triple = execute_task(self._cluster, base, fn, args)
            self._respond(
                request_id, triple,
                spans=(
                    [self._task_span(trace, started, mode="inline")]
                    if trace is not None else None
                ),
                usage=(
                    [self._task_usage(ru0, mode="inline")]
                    if profile else None
                ),
            )

    def _task_span(
        self, trace: dict, started: float, *, mode: str
    ) -> dict:
        """One finished leaf span for a task executed on this shard.

        Parented on the coordinator-side batch span carried by the task
        message (the cross-wire link); pool mode's duration includes the
        task's wait in the daemon's own pool queue.
        """
        host, port = self.worker.address
        return remote_span(
            trace,
            "worker.task",
            started,
            time.perf_counter() - started,
            shard=f"{host}:{port}",
            pid=os.getpid(),
            mode=mode,
        )

    def _task_usage(self, before: Any, *, mode: str) -> dict:
        """One finished rusage row for a profiled task on this shard.

        Pool mode ships the daemon-side delta (dispatch/serialization;
        the task body ran in a child process) with ``mode`` marking the
        caveat — see :func:`repro.obs.profile.worker_usage`.
        """
        host, port = self.worker.address
        return worker_usage(before, shard=f"{host}:{port}", mode=mode)

    def _pool_done(
        self,
        request_id: Any,
        future: Any,
        trace: "dict | None" = None,
        started: float = 0.0,
        rusage0: Any = None,
        profile: bool = False,
    ) -> None:
        with self._inflight_cond:
            self._inflight.discard(future)
            self._inflight_cond.notify_all()
        try:
            triple = future.result()
        except concurrent.futures.process.BrokenProcessPool as exc:
            # A pool process died: the pool is unusable, drop it so the
            # next task starts a fresh one.  Reported as a task failure,
            # not a shard death: resubmitting a task that kills workers
            # would cascade.
            self.worker._reset_pool_after_crash()
            self.write(protocol.error_response(
                request_id, f"shard task execution failed: {exc!r}"
            ))
            return
        except BaseException as exc:  # noqa: BLE001 - must answer the id
            # Any other failure — result transport (unpicklable payload),
            # or CancelledError (a BaseException) when a crash reset
            # cancelled queued siblings — is per-task: answer it and keep
            # the (healthy) pool; other connections' work rides on it.
            # An unanswered id would stall the coordinator until its
            # task_timeout buries this perfectly live shard.
            self.write(protocol.error_response(
                request_id, f"shard task execution failed: {exc!r}"
            ))
            return
        spans = None
        if trace is not None:
            spans = [self._task_span(trace, started, mode="pool")]
        usage = None
        if profile:
            usage = [self._task_usage(rusage0, mode="pool")]
        self._respond(request_id, triple, spans=spans, usage=usage)

    def _respond(
        self,
        request_id: Any,
        triple: tuple,
        spans: "list[dict] | None" = None,
        usage: "list[dict] | None" = None,
    ) -> None:
        try:
            data = protocol.pack(triple)
        except Exception as exc:  # unpicklable payload
            self.write(protocol.error_response(
                request_id, f"task result not serializable: {exc}"
            ))
            return
        response = protocol.ok_response(request_id, "delta", None)
        response["data"] = data
        if spans:
            response["spans"] = spans
        if usage:
            response["usage"] = usage
        self.write(response)


class _Handler(socketserver.StreamRequestHandler):
    """One coordinator connection: hello, then the read loop."""

    server: "_TCPServer"

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        worker = self.server.worker
        try:
            protocol.write_message(self.wfile, worker._hello())
        except OSError:
            return  # readiness probe that connected and hung up
        ctx = _Connection(worker, self.connection, self.wfile)
        worker._register(ctx)
        try:
            while True:
                try:
                    message = protocol.read_message(self.rfile)
                except (protocol.ProtocolError, OSError) as exc:
                    if isinstance(exc, protocol.ProtocolError):
                        ctx.write(protocol.error_response(None, str(exc)))
                    return
                if message is None:
                    return
                if not message:
                    continue
                op = message.get("op")
                request_id = message.get("id")
                if op in ("bind", "task"):
                    ctx.enqueue(message)
                elif op == "ping":
                    ctx.write(protocol.ok_response(
                        request_id, "pong",
                        {"version": protocol.WORKER_PROTOCOL_VERSION},
                    ))
                elif op == "stats":
                    ctx.write(protocol.ok_response(
                        request_id, "stats", worker.stats()
                    ))
                elif op == "shutdown":
                    ctx.write(protocol.ok_response(request_id, "bye", None))
                    worker._request_shutdown()
                    return
                else:
                    ctx.write(protocol.error_response(
                        request_id,
                        f"unknown op {op!r}; expected one of "
                        f"{', '.join(protocol.WORKER_OPS)}",
                    ))
        finally:
            worker._unregister(ctx)
            ctx.close()


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    worker: "ShardWorker"


class ShardWorker:
    """Long-lived shard daemon serving cluster tasks over TCP.

    Parameters
    ----------
    host, port:
        Bind address (``port=0`` picks an ephemeral port; read
        :attr:`address`).
    graph:
        Optional :class:`Graph` instance or graph file path preloaded
        into the fingerprint cache, so coordinators that already know the
        worker holds the data never ship it.
    workers:
        OS processes for task execution (``0`` = inline serial — every
        connection still runs independently on its own replica).
    announce:
        A query server address (``"host:port"``) to announce this worker
        to — on start and every ``announce_interval`` seconds — joining
        its elastic shard roster; :meth:`close` withdraws the entry.
    announce_interval:
        Seconds between re-announcements (keeps the registry entry
        fresh; the registry's default staleness horizon is three
        intervals).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        graph: "Graph | str | Path | None" = None,
        workers: int = 0,
        announce: "tuple[str, int] | str | int | None" = None,
        announce_interval: float = 5.0,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if announce_interval <= 0:
            raise ValueError(
                f"announce_interval must be positive, got {announce_interval}"
            )
        self.workers = workers
        self._announce = (
            None if announce is None else protocol.parse_address(announce)
        )
        self._announce_interval = announce_interval
        self._announce_stop = threading.Event()
        self._announce_thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._graphs: dict[str, Graph] = {}
        self._partitions: dict[tuple[str, str], GraphPartition] = {}
        self._specs: dict[tuple[str, str], _SpecEntry] = {}
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._tasks_served = 0
        self._contexts: set[_Connection] = set()
        if graph is not None:
            if not isinstance(graph, Graph):
                from repro.api.session import load_graph

                graph = load_graph(graph)
            self._graphs[graph.fingerprint()] = graph
        self._tcp = _TCPServer((host, int(port)), _Handler)
        self._tcp.worker = self
        self._thread: threading.Thread | None = None
        self._closed = False
        self._crashed = False
        self._serving = False
        self._close_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle (mirrors repro.service.server.QueryServer)
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral ports."""
        return self._tcp.server_address[:2]

    def start(self) -> "ShardWorker":
        """Serve on a daemon thread; returns immediately."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._tcp.serve_forever,
                name="repro-shard-worker",
                daemon=True,
            )
            self._thread.start()
            self._ensure_announcer()
        return self

    def serve_forever(self) -> None:
        """Block serving coordinators until :meth:`close` or a shutdown op."""
        self._serving = True
        self._ensure_announcer()
        self._tcp.serve_forever()

    # -- announce (elastic roster membership) --------------------------
    def _ensure_announcer(self) -> None:
        if self._announce is None or self._announce_thread is not None:
            return

        def loop() -> None:
            self.announce_now()
            while not self._announce_stop.wait(self._announce_interval):
                self.announce_now()

        self._announce_thread = threading.Thread(
            target=loop, name="repro-shard-announce", daemon=True
        )
        self._announce_thread.start()

    def _announce_call(self, message: dict[str, Any]) -> bool:
        """One announce-protocol exchange with the query server."""
        if self._announce is None:
            return False
        try:
            with socket.create_connection(
                self._announce, timeout=10.0
            ) as sock:
                sock.settimeout(10.0)
                rfile = sock.makefile("rb")
                wfile = sock.makefile("wb")
                hello = protocol.read_message(rfile)
                if not hello or hello.get("kind") != "hello":
                    return False
                protocol.write_message(wfile, message)
                reply = protocol.read_message(rfile)
                return bool(reply and reply.get("ok"))
        except (OSError, protocol.ProtocolError):
            return False

    def announce_now(self) -> bool:
        """Send one announce to the configured query server.

        Returns True when the server acknowledged; False when there is
        no announce target, nothing answered, or the reply was an error
        (the periodic announcer just tries again next interval).
        """
        if self._announce is None:
            return False
        host, port = self.address
        return self._announce_call({
            "op": "announce",
            "id": 1,
            "address": f"{host}:{port}",
            "graphs": self.fingerprints(),
            "workers": self.workers,
            "pid": os.getpid(),
        })

    def _withdraw(self) -> None:
        """Best-effort registry withdrawal (polite close only)."""
        host, port = self.address
        self._announce_call({
            "op": "announce",
            "id": 1,
            "address": f"{host}:{port}",
            "withdraw": True,
        })

    def close(self) -> None:
        """Stop accepting, release the socket and the pool (idempotent).

        A worker announcing to a query server withdraws its registry
        entry first — unless it is dying via :meth:`crash`, which must
        look exactly like a killed host (the entry goes stale instead).
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            self._announce_stop.set()
            if self._announce is not None:
                if not self._crashed:
                    self._withdraw()
                if self._announce_thread is not None:
                    self._announce_thread.join(timeout=5)
                    self._announce_thread = None
            if self._serving:
                self._tcp.shutdown()
            self._tcp.server_close()
            if self._thread is not None:
                self._thread.join()
                self._thread = None
            with self._lock:
                pool, self._pool = self._pool, None
                specs = list(self._specs.values())
                self._specs.clear()
            if pool is not None:
                pool.shutdown(wait=True)
            for entry in specs:
                entry.close()

    def crash(self) -> None:
        """Die abruptly: sever live connections with no protocol goodbye.

        Fault-injection hook for tests and demos — coordinators observe
        exactly what a SIGKILL'd daemon produces (EOF / reset mid-batch)
        without the nondeterminism of killing a real process.  The
        ``_crashed`` flag covers handler threads still between ``accept``
        and registration: they would otherwise slip past the severing
        loop and keep serving a connection the daemon is dead for.
        """
        with self._lock:
            self._crashed = True
            contexts = list(self._contexts)
        for ctx in contexts:
            self._sever(ctx)
        self.close()

    @staticmethod
    def _sever(ctx: _Connection) -> None:
        try:
            ctx.connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _request_shutdown(self) -> None:
        """Shutdown initiated from a handler thread (the ``shutdown`` op)."""
        threading.Thread(target=self.close, daemon=True).start()

    def __enter__(self) -> "ShardWorker":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Shared state behind the connections
    # ------------------------------------------------------------------
    def _hello(self) -> dict[str, Any]:
        return {
            "kind": "hello",
            "ok": True,
            "version": protocol.WORKER_PROTOCOL_VERSION,
            "role": protocol.WORKER_ROLE,
            "graphs": self.fingerprints(),
            "workers": self.workers,
            "pid": os.getpid(),
        }

    def fingerprints(self) -> list[str]:
        """Fingerprints of the graphs this worker holds."""
        with self._lock:
            return list(self._graphs)

    def stats(self) -> dict[str, Any]:
        """JSON-safe daemon counters (the ``stats`` op's payload)."""
        with self._lock:
            return {
                "graphs": list(self._graphs),
                "partitions": len(self._partitions),
                "tasks_served": self._tasks_served,
                "workers": self.workers,
                "connections": len(self._contexts),
                "pid": os.getpid(),
            }

    def _register(self, ctx: _Connection) -> None:
        with self._lock:
            crashed = self._crashed
            if not crashed:
                self._contexts.add(ctx)
        if crashed:
            self._sever(ctx)

    def _unregister(self, ctx: _Connection) -> None:
        with self._lock:
            self._contexts.discard(ctx)

    def _count_task(self) -> None:
        with self._lock:
            self._tasks_served += 1

    def _graph_for(
        self, fingerprint: str, shipped: "Graph | None"
    ) -> tuple[Graph, bool]:
        """The cached graph for ``fingerprint`` (caching ``shipped`` once).

        Returns ``(graph, was_cached)``; raises :class:`LookupError` when
        the graph is neither cached nor shipped (the coordinator answers
        that by re-binding with the graph payload, or — in strict
        no-shipping mode — by failing the handshake loudly).
        """
        with self._lock:
            cached = _touch_lru(self._graphs, fingerprint)
            if cached is not None:
                return cached, True
            if shipped is None:
                raise LookupError(
                    f"graph {fingerprint!r} is not loaded on this worker"
                )
            if shipped.fingerprint() != fingerprint:
                raise ValueError(
                    f"shipped graph fingerprint "
                    f"{shipped.fingerprint()!r} does not match the bind's "
                    f"{fingerprint!r}"
                )
            while len(self._graphs) >= _DAEMON_CACHE_LIMIT:
                self._graphs.pop(next(iter(self._graphs)))
            self._graphs[fingerprint] = shipped
            return shipped, False

    def _partition_for(
        self, graph: Graph, owner: np.ndarray
    ) -> GraphPartition:
        """The worker-local partition for (graph, ownership map), cached."""
        key = (graph.fingerprint(), owner_digest(owner))
        with self._lock:
            partition = _touch_lru(self._partitions, key)
            if partition is None:
                partition = GraphPartition(graph, owner)
                while len(self._partitions) >= _DAEMON_CACHE_LIMIT:
                    self._partitions.pop(next(iter(self._partitions)))
                self._partitions[key] = partition
            return partition

    def _spec_for(
        self, partition: GraphPartition, cost_model: Any, capacity: int | None
    ) -> "_ClusterSpec":
        """Pool mode: the shared-memory spec publishing ``partition``."""
        from repro.runtime.executor import _ClusterSpec

        key = (
            partition.graph.fingerprint(), owner_digest(partition.owner)
        )
        with self._lock:
            entry = _touch_lru(self._specs, key)
            if entry is None:
                entry = _SpecEntry(partition)
                while len(self._specs) >= _DAEMON_CACHE_LIMIT:
                    # Unlink the evicted segments: pool processes that
                    # already attached keep their mappings (a re-bind of
                    # the same partition gets a fresh entry + token), but
                    # the daemon stops pinning /dev/shm for it.
                    self._specs.pop(next(iter(self._specs))).close()
                self._specs[key] = entry
        return _ClusterSpec(
            token=entry.token,
            graph=entry.graph_handle,
            owner=entry.owner_handle,
            cost_model=cost_model,
            memory_capacity=capacity,
        )

    def _pool_submit(self, spec: Any, base: Any, fn: Any, args: Any):
        with self._lock:
            if self._closed:
                raise RuntimeError("worker is closed")
            if self._pool is None:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers
                )
            return self._pool.submit(_worker_run, spec, base, fn, args)

    def _reset_pool_after_crash(self) -> None:
        """Drop a broken pool so the next task starts a fresh one."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


def stop_worker(
    address: "tuple[str, int] | str | int", *, timeout: float = 10.0
) -> bool:
    """Politely stop a shard worker via the protocol's ``shutdown`` op.

    Returns True when the worker acknowledged; False when nothing
    answered (already dead).  Convenience for scripts and CI teardown.
    """
    host, port = protocol.parse_address(address)
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            hello = protocol.read_message(rfile)
            if not hello or hello.get("kind") != "hello":
                return False
            protocol.write_message(wfile, {"op": "shutdown", "id": 0})
            reply = protocol.read_message(rfile)
            return bool(reply and reply.get("ok"))
    except OSError:
        return False
