"""Exception types for the distributed shard runtime.

Kept in a dependency-free module so that coordinator-facing callers
(``repro.api.session``, ``repro.cli``) can import the error type without
pulling in the socket/coordinator machinery — which itself imports the
service and api layers and would otherwise form an import cycle.
"""

from __future__ import annotations

__all__ = ["DistributedError"]


class DistributedError(RuntimeError):
    """The shard roster cannot serve: handshake failure or total loss."""
