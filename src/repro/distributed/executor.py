"""The socket-transport execution backend.

:class:`SocketExecutor` is a drop-in :class:`~repro.runtime.executor.Executor`
that runs each batch's tasks on remote
:class:`~repro.distributed.worker.ShardWorker` daemons instead of a local
process pool.  Everything engines rely on is preserved:

- deltas are applied in **task-submission order**, so counts and reported
  stats are bit-identical to the serial and process backends no matter
  how tasks were dealt across shards (or resubmitted after a fault);
- a failing task (simulated OOM) has its partial delta merged and its
  exception re-raised in task order, exactly like
  :class:`~repro.runtime.executor.ProcessExecutor`;
- fault-tolerance events are surfaced on the run's counters
  (``distributed.resubmits``, ``distributed.lost_workers``) whenever
  they advance — a healthy run carries neither key, keeping its
  counters byte-for-byte equal to a serial run's.

Select it with ``RunConfig(backend="socket", shards=[...])``,
``Session.backend("socket", shards=[...])`` or
``repro run --backend socket --shards host:port,...``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.cluster.cluster import Cluster
from repro.distributed.coordinator import (
    LOST_WORKERS,
    RESUBMITS,
    ShardCoordinator,
)
from repro.obs.profile import attach_worker_usage, profile_active
from repro.obs.trace import attach_spans, span as _obs_span, wire_context
from repro.runtime.delta import apply_delta
from repro.runtime.executor import Executor, TaskFn

__all__ = ["SocketExecutor"]


class SocketExecutor(Executor):
    """Executor dispatching batches to shard workers over TCP.

    Connects (and handshakes) eagerly so misconfigured rosters fail at
    construction, not mid-run.  ``workers`` reports the live roster size.
    See :class:`~repro.distributed.coordinator.ShardCoordinator` for the
    roster/fault-tolerance parameters forwarded via ``**coordinator_kwargs``
    (``window``, ``connect_timeout``, ``task_timeout``, ``ship_graph``,
    ``heartbeat_interval``, and — for an elastic roster that follows
    worker announcements — ``registry`` / ``rejoin_timeout``; with a
    registry, ``shards`` may be empty).
    """

    parallel = True

    def __init__(
        self,
        shards: Sequence["tuple[str, int] | str | int"],
        *,
        heartbeat_interval: float | None = 30.0,
        **coordinator_kwargs: Any,
    ):
        self._coordinator = ShardCoordinator(
            shards,
            heartbeat_interval=heartbeat_interval,
            **coordinator_kwargs,
        )
        self.workers = len(self._coordinator.live_shards())
        # Fault counters already surfaced on some earlier run's results;
        # each run reports only what happened since.  The baseline is
        # zero (not the post-connect snapshot) so shards that were
        # configured but unreachable at startup land on the first run's
        # counters instead of vanishing.
        self._counters_seen = {RESUBMITS: 0, LOST_WORKERS: 0}

    @property
    def coordinator(self) -> ShardCoordinator:
        """The underlying roster (live shards, counters, heartbeat)."""
        return self._coordinator

    # ------------------------------------------------------------------
    def run_tasks(
        self, cluster: Cluster, fn: TaskFn, tasks: Sequence[Any]
    ) -> list[Any]:
        if not tasks:
            return []
        with _obs_span(
            "executor.batch", backend="socket", tasks=len(tasks)
        ):
            # Traced runs ship the batch span as the parent for the
            # shard workers' leaf spans; the finished worker spans come
            # back with the batch and fold into the live tree here.
            # Profiled runs ride the same pipe: workers measure their
            # own rusage per task and the rows fold into the active
            # profiler.
            try:
                triples = self._coordinator.run_batch(
                    cluster, fn, tasks,
                    trace=wire_context(),
                    profile=profile_active(),
                )
            finally:
                self.workers = len(self._coordinator.live_shards())
                self._surface_counters(cluster)
                attach_spans(self._coordinator.take_worker_spans())
                attach_worker_usage(self._coordinator.take_worker_usage())
        payloads: list[Any] = []
        first_error: BaseException | None = None
        for status, payload, delta in triples:
            if first_error is not None:
                continue  # serial execution would never have run it
            if status == "transport_error":
                first_error = payload
                continue
            apply_delta(cluster, delta)
            if status == "error":
                # Merge the failing task's partial state first (serial
                # parity), then re-raise in task order.
                first_error = payload
            else:
                payloads.append(payload)
        if first_error is not None:
            raise first_error
        return payloads

    def _surface_counters(self, cluster: Cluster) -> None:
        """Attach fault-counter advances to the run's cluster counters.

        Only advanced counters are attached (a fault-free run reports
        nothing, so its stats stay bit-identical to serial); machine 0
        hosts them because :func:`repro.engines.base._cluster_counters`
        merges per-machine counters anyway.
        """
        current = self._coordinator.counters
        for key in (RESUBMITS, LOST_WORKERS):
            advance = current.get(key, 0) - self._counters_seen.get(key, 0)
            if advance > 0 and cluster.machines:
                cluster.machines[0].counters[key] += advance
        self._counters_seen = current

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Disconnect from the roster (idempotent; daemons keep running)."""
        self._coordinator.close()
