"""Coordinator <-> shard-worker wire protocol.

The transport reuses the query service's JSON-lines framing verbatim
(:mod:`repro.service.protocol`: one UTF-8 JSON object per line, versioned
hello on connect) and rides binary simulation payloads — cluster-state
snapshots, task functions/arguments, :class:`~repro.runtime.delta.ClusterDelta`
records — inside it as base64-encoded pickles.  JSON keeps the framing,
versioning and error reporting debuggable with ``nc``; pickle keeps the
payloads exactly the objects the in-process backends already exchange, so
the socket backend is bit-identical to the process pool by construction.

On connect the **worker** greets with one hello line::

    {"kind": "hello", "version": 1, "role": "shard-worker",
     "graphs": ["<fingerprint>", ...], "workers": 0, "pid": 12345}

Requests (coordinator -> worker) then follow; every response echoes
``id`` and carries ``ok``::

    {"op": "bind", "id": 1, "fingerprint": "<sha256>",
     "data": "<b64 pickle {owner, cost_model, memory_capacity}>",
     "graph": "<b64 pickle Graph, only when shipping>"}
    {"op": "task", "id": 2, "batch": "batch-7",
     "data": "<b64 pickle args>",
     "ctx": "<b64 pickle (base, fn), first task per connection only>",
     "trace": {"trace_id": "...", "parent": "..."},  # traced runs only
     "profile": true}                        # profiled runs only
    {"op": "ping", "id": 3}
    {"op": "stats", "id": 4}
    {"op": "shutdown", "id": 5}

    {"id": 1, "ok": true, "kind": "bound",
     "result": {"fingerprint": "...", "cached_graph": true}}
    {"id": 1, "ok": false, "error": "...", "code": "need-graph",
     "have": ["<fingerprint>", ...]}         # re-bind with the graph
    {"id": 2, "ok": true, "kind": "delta",
     "data": "<b64 pickle (status, payload, delta)>",
     "spans": [{...}],                       # traced runs only
     "usage": [{...}]}                       # profiled runs only
    {"id": n, "ok": false, "error": "human-readable message"}

Tracing (PR 9): a traced run's ``task`` messages carry the JSON-safe
``trace`` propagation context (:func:`repro.obs.trace.wire_context` —
the trace id plus the coordinator-side batch span to parent on); the
worker times each task and ships the finished span dict(s) back in the
``spans`` list beside the delta payload, where the coordinator folds
them into the live trace.  Untraced runs carry neither field, so the
wire bytes of the default path are unchanged.

Profiling (PR 10): a profiled run's ``task`` messages carry
``profile: true``; the worker measures its own ``getrusage`` delta
across the task and ships the JSON-safe row back in the ``usage`` list
(:func:`repro.obs.profile.worker_usage` — shard address, pid, execution
mode, utime/stime, maxrss), which the coordinator accumulates for the
executor to fold into the active profiler.  Unprofiled runs carry
neither field.

A worker answers ``task`` responses in completion order (its process pool
may finish them out of order); the coordinator matches on ``id``.  A
``bind`` is a barrier: it is answered only once every in-flight task on
that connection has drained.  The batch-shared context — the cluster-state
snapshot and the task function — rides on the *first* task message each
connection sees for a ``batch`` token and is cached for the rest: the
snapshot grows with the simulated machine count, so shipping it per task
would make a batch's wire bytes quadratic in cluster size.

Security note: task payloads are **pickles executed on the worker** — the
shard protocol assumes a trusted cluster (the same trust the process-pool
backend places in ``fork``).  Do not expose worker ports beyond it.
"""

from __future__ import annotations

import base64
import pickle
from typing import Any

from repro.service.protocol import (
    ProtocolError,
    decode,
    encode,
    error_response,
    ok_response,
    parse_address,
    read_message,
    write_message,
)

__all__ = [
    "ProtocolError",
    "WORKER_OPS",
    "WORKER_PROTOCOL_VERSION",
    "WORKER_ROLE",
    "decode",
    "encode",
    "error_response",
    "ok_response",
    "pack",
    "parse_address",
    "read_message",
    "unpack",
    "write_message",
]

#: Bumped on incompatible wire changes; echoed in the worker hello and
#: checked by the coordinator before any bind.
WORKER_PROTOCOL_VERSION = 1

#: Operations a shard worker dispatches on.
WORKER_OPS = ("bind", "task", "ping", "stats", "shutdown")

#: ``role`` advertised in the worker hello (distinguishes a shard worker
#: from a query server answering on the same port by mistake).
WORKER_ROLE = "shard-worker"


def pack(obj: Any) -> str:
    """Pickle ``obj`` and wrap it for the JSON envelope (base64 text)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack(text: str) -> Any:
    """Inverse of :func:`pack` (raises :class:`ProtocolError` on garbage)."""
    try:
        return pickle.loads(base64.b64decode(text))
    except Exception as exc:  # pickle raises a zoo of exception types
        raise ProtocolError(f"undecodable binary payload: {exc}") from exc
