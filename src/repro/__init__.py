"""RADS — reproduction of "Fast and Robust Distributed Subgraph
Enumeration" (Ren, Wang, Han, Yu; VLDB 2019) on a simulated cluster.

Top-level convenience re-exports cover the everyday API::

    from repro import Graph, Pattern, Cluster, RADSEngine, paper_query

    graph = ...                       # build or load a data graph
    cluster = Cluster.create(graph, num_machines=10)
    result = RADSEngine().run(cluster, paper_query("q4"))

Heavier pieces (baseline engines, benchmark harness, labeled layer) live
in their subpackages: :mod:`repro.engines`, :mod:`repro.bench`,
:mod:`repro.enumeration`, :mod:`repro.graph`, :mod:`repro.partition`.
"""

from __future__ import annotations

__version__ = "1.1.0"

#: Lazily resolved re-exports: name -> (module, attribute).  Resolving on
#: first access keeps ``import repro`` light and the import graph acyclic
#: (repro.core imports repro.engines.base and vice versa via registries).
_EXPORTS: dict[str, tuple[str, str]] = {
    "Graph": ("repro.graph.graph", "Graph"),
    "GraphBuilder": ("repro.graph.builder", "GraphBuilder"),
    "LabeledGraph": ("repro.graph.labeled", "LabeledGraph"),
    "Pattern": ("repro.query.pattern", "Pattern"),
    "LabeledPattern": ("repro.enumeration.labeled", "LabeledPattern"),
    "paper_query": ("repro.query.patterns", "paper_query"),
    "named_patterns": ("repro.query.patterns", "named_patterns"),
    "Cluster": ("repro.cluster.cluster", "Cluster"),
    "CostModel": ("repro.cluster.costmodel", "CostModel"),
    "RADSEngine": ("repro.core.rads", "RADSEngine"),
    "RunResult": ("repro.engines.base", "RunResult"),
    "all_engines": ("repro.engines", "all_engines"),
    "extended_engines": ("repro.engines", "extended_engines"),
    "enumerate_embeddings": (
        "repro.enumeration.backtracking", "enumerate_embeddings"
    ),
    "labeled_embeddings": ("repro.enumeration.labeled", "labeled_embeddings"),
    "best_execution_plan": ("repro.query.plan", "best_execution_plan"),
    "Executor": ("repro.runtime.executor", "Executor"),
    "SerialExecutor": ("repro.runtime.executor", "SerialExecutor"),
    "ProcessExecutor": ("repro.runtime.executor", "ProcessExecutor"),
    "get_executor": ("repro.runtime.executor", "get_executor"),
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
