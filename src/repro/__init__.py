"""RADS — reproduction of "Fast and Robust Distributed Subgraph
Enumeration" (Ren, Wang, Han, Yu; VLDB 2019) on a simulated cluster.

The public surface is the :mod:`repro.api` session facade::

    import repro

    result = (
        repro.open("road.npz")            # or an in-memory Graph
        .with_cluster(machines=10, memory_mb=512)
        .engine("rads")                    # any registry name/alias
        .query("q4")
        .run()
    )
    print(result.summary())
    record = result.to_dict()              # JSON-safe, from_dict inverts

Engines are resolved through :func:`repro.api.default_registry`; runs are
configured with :class:`repro.api.RunConfig`; ``Session.run_grid`` sweeps
engine x query grids.  The lower layers remain importable for direct use::

    from repro import Graph, Pattern, Cluster, RADSEngine, paper_query

    cluster = Cluster.create(graph, num_machines=10)
    result = RADSEngine().run(cluster, paper_query("q4"))

Heavier pieces (baseline engines, benchmark harness, labeled layer) live
in their subpackages: :mod:`repro.engines`, :mod:`repro.bench`,
:mod:`repro.enumeration`, :mod:`repro.graph`, :mod:`repro.partition`.
"""

from __future__ import annotations

__version__ = "1.3.0"

#: Lazily resolved re-exports: name -> (module, attribute).  Resolving on
#: first access keeps ``import repro`` light and the import graph acyclic
#: (repro.core imports repro.engines.base and vice versa via registries).
_EXPORTS: dict[str, tuple[str, str]] = {
    # -- the repro.api facade ------------------------------------------
    "open": ("repro.api.session", "open_session"),
    "open_session": ("repro.api.session", "open_session"),
    "load_graph": ("repro.api.session", "load_graph"),
    "Session": ("repro.api.session", "Session"),
    "RunConfig": ("repro.api.config", "RunConfig"),
    "ConfigError": ("repro.api.config", "ConfigError"),
    "EngineRegistry": ("repro.api.registry", "EngineRegistry"),
    "EngineSpec": ("repro.api.registry", "EngineSpec"),
    "register_engine": ("repro.api.registry", "register_engine"),
    "default_registry": ("repro.api.registry", "default_registry"),
    "UnknownEngineError": ("repro.api.registry", "UnknownEngineError"),
    "UnknownQueryError": ("repro.api.session", "UnknownQueryError"),
    "CapabilityError": ("repro.api.registry", "CapabilityError"),
    "write_results_jsonl": ("repro.api.results", "write_results_jsonl"),
    "read_results_jsonl": ("repro.api.results", "read_results_jsonl"),
    "read_records_jsonl": ("repro.api.results", "read_records_jsonl"),
    "append_record_jsonl": ("repro.api.results", "append_record_jsonl"),
    # -- the distributed shard runtime ---------------------------------
    "SocketExecutor": ("repro.distributed.executor", "SocketExecutor"),
    "ShardWorker": ("repro.distributed.worker", "ShardWorker"),
    "ShardCoordinator": ("repro.distributed.coordinator", "ShardCoordinator"),
    "DistributedError": ("repro.distributed.coordinator", "DistributedError"),
    "stop_worker": ("repro.distributed.worker", "stop_worker"),
    # -- the query service layer ---------------------------------------
    "connect": ("repro.service.client", "connect"),
    "ServiceClient": ("repro.service.client", "ServiceClient"),
    "ServiceError": ("repro.service.client", "ServiceError"),
    "QueryScheduler": ("repro.service.scheduler", "QueryScheduler"),
    "QueryServer": ("repro.service.server", "QueryServer"),
    "ResultCache": ("repro.service.cache", "ResultCache"),
    "ServiceTimeout": ("repro.service.scheduler", "ServiceTimeout"),
    "AdmissionError": ("repro.service.scheduler", "AdmissionError"),
    "Subscription": ("repro.service.client", "Subscription"),
    # -- the persistent embedding store --------------------------------
    "EmbeddingStore": ("repro.store", "EmbeddingStore"),
    "TrieColumns": ("repro.store", "TrieColumns"),
    "pattern_orbits": ("repro.store", "pattern_orbits"),
    # -- streaming ingest + continuous queries -------------------------
    "ContinuousQueryManager": (
        "repro.streaming.continuous", "ContinuousQueryManager"
    ),
    "Watch": ("repro.streaming.continuous", "Watch"),
    "IncrementalMatcher": ("repro.streaming.incremental", "IncrementalMatcher"),
    "DeltaRecord": ("repro.streaming.records", "DeltaRecord"),
    "GraphVersion": ("repro.streaming.version", "GraphVersion"),
    "VersionedGraph": ("repro.streaming.version", "VersionedGraph"),
    # -- the declarative query surface ---------------------------------
    "pattern": ("repro.query.dsl", "parse_pattern"),
    "parse_pattern": ("repro.query.dsl", "parse_pattern"),
    "PatternBuilder": ("repro.query.dsl", "PatternBuilder"),
    "PatternSyntaxError": ("repro.query.dsl", "PatternSyntaxError"),
    "QueryExplanation": ("repro.query.explain", "QueryExplanation"),
    "explain_query": ("repro.query.explain", "explain_query"),
    "resolve_query": ("repro.api.session", "resolve_query"),
    # -- lower layers ---------------------------------------------------
    "Graph": ("repro.graph.graph", "Graph"),
    "GraphBuilder": ("repro.graph.builder", "GraphBuilder"),
    "LabeledGraph": ("repro.graph.labeled", "LabeledGraph"),
    "Pattern": ("repro.query.pattern", "Pattern"),
    "LabeledPattern": ("repro.enumeration.labeled", "LabeledPattern"),
    "paper_query": ("repro.query.patterns", "paper_query"),
    "named_patterns": ("repro.query.patterns", "named_patterns"),
    "Cluster": ("repro.cluster.cluster", "Cluster"),
    "CostModel": ("repro.cluster.costmodel", "CostModel"),
    "RADSEngine": ("repro.core.rads", "RADSEngine"),
    "RunResult": ("repro.engines.base", "RunResult"),
    "all_engines": ("repro.engines", "all_engines"),
    "extended_engines": ("repro.engines", "extended_engines"),
    "enumerate_embeddings": (
        "repro.enumeration.backtracking", "enumerate_embeddings"
    ),
    "labeled_embeddings": ("repro.enumeration.labeled", "labeled_embeddings"),
    "best_execution_plan": ("repro.query.plan", "best_execution_plan"),
    "Executor": ("repro.runtime.executor", "Executor"),
    "SerialExecutor": ("repro.runtime.executor", "SerialExecutor"),
    "ProcessExecutor": ("repro.runtime.executor", "ProcessExecutor"),
    "get_executor": ("repro.runtime.executor", "get_executor"),
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
