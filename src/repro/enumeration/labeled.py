"""Labeled subgraph enumeration with TurboIso-style filtering.

The unlabeled enumerators in this package treat every data vertex as a
candidate for every query vertex.  With labels, TurboIso's candidate
filters apply:

- **label filter** — ``f(u)`` must carry ``u``'s label;
- **degree filter** — ``deg(f(u)) >= deg(u)``;
- **NLF filter** — for every label ``l``, ``f(u)`` must have at least as
  many neighbours labeled ``l`` as ``u`` does (neighbourhood label
  frequency).

The matching order follows TurboIso's candidate-cardinality heuristic:
start from the query vertex with the fewest surviving candidates, then
grow connectivity-first, preferring small candidate sets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.enumeration.backtracking import EnumerationStats
from repro.graph.labeled import LabeledGraph
from repro.query.pattern import Pattern


class LabeledPattern:
    """A query pattern whose vertices carry integer labels."""

    def __init__(self, pattern: Pattern, labels: Iterable[int]):
        label_tuple = tuple(int(x) for x in labels)
        if len(label_tuple) != pattern.num_vertices:
            raise ValueError(
                f"expected {pattern.num_vertices} labels, "
                f"got {len(label_tuple)}"
            )
        if any(x < 0 for x in label_tuple):
            raise ValueError("labels must be non-negative integers")
        self._pattern = pattern
        self._labels = label_tuple

    @property
    def pattern(self) -> Pattern:
        """The underlying unlabeled pattern."""
        return self._pattern

    @property
    def labels(self) -> tuple[int, ...]:
        """Label tuple indexed by query vertex id."""
        return self._labels

    @property
    def name(self) -> str:
        """The underlying pattern's name (labels shown by ``repr``)."""
        return self._pattern.name

    @property
    def num_vertices(self) -> int:
        """Number of query vertices."""
        return self._pattern.num_vertices

    def label(self, u: int) -> int:
        """Label of query vertex ``u``."""
        return self._labels[u]

    def neighborhood_label_frequency(self, u: int) -> Counter[int]:
        """NLF of query vertex ``u``."""
        return Counter(self._labels[w] for w in self._pattern.adj(u))

    def to_dsl(self) -> str:
        """Labeled DSL text (``repro.pattern`` inverts)."""
        from repro.query.dsl import format_pattern

        return format_pattern(self._pattern, self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledPattern):
            return NotImplemented
        return (
            self._pattern == other._pattern
            and self._labels == other._labels
        )

    def __hash__(self) -> int:
        return hash((self._pattern, self._labels))

    def __str__(self) -> str:
        return self.to_dsl()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LabeledPattern({self._pattern.name}, labels={self._labels})"


def candidate_sets(
    data: LabeledGraph,
    query: LabeledPattern,
    use_nlf: bool = True,
    stats: EnumerationStats | None = None,
) -> dict[int, np.ndarray]:
    """Per-query-vertex candidate arrays after label/degree/NLF filtering."""
    pattern = query.pattern
    out: dict[int, np.ndarray] = {}
    for u in pattern.vertices():
        base = data.vertices_with_label(query.label(u))
        min_degree = pattern.degree(u)
        survivors = [
            int(v) for v in base if data.degree(int(v)) >= min_degree
        ]
        if stats is not None:
            stats.candidates_scanned += len(base)
        if use_nlf and survivors:
            needed = query.neighborhood_label_frequency(u)
            survivors = [
                v
                for v in survivors
                if _nlf_dominates(data.neighborhood_label_frequency(v), needed)
            ]
        out[u] = np.asarray(sorted(survivors), dtype=np.int64)
    return out


def _nlf_dominates(have: Counter[int], need: Counter[int]) -> bool:
    return all(have.get(lbl, 0) >= cnt for lbl, cnt in need.items())


def labeled_matching_order(
    pattern: Pattern, candidates: dict[int, np.ndarray]
) -> list[int]:
    """Candidate-cardinality matching order (TurboIso heuristic)."""
    start = min(
        pattern.vertices(),
        key=lambda u: (len(candidates[u]), -pattern.degree(u), u),
    )
    order = [start]
    remaining = set(pattern.vertices()) - {start}
    while remaining:
        placed = set(order)
        connected = [u for u in remaining if pattern.adj(u) & placed]
        if not connected:
            raise ValueError("pattern is disconnected")
        nxt = min(
            connected,
            key=lambda u: (len(candidates[u]), -pattern.degree(u), u),
        )
        order.append(nxt)
        remaining.discard(nxt)
    return order


@dataclass
class LabeledEnumerator:
    """Backtracking matcher over a labeled graph and labeled pattern."""

    data: LabeledGraph
    query: LabeledPattern
    use_nlf: bool = True
    stats: EnumerationStats = field(default_factory=EnumerationStats)

    def __post_init__(self) -> None:
        self._candidates = candidate_sets(
            self.data, self.query, self.use_nlf, self.stats
        )
        self._order = labeled_matching_order(
            self.query.pattern, self._candidates
        )
        pattern = self.query.pattern
        position = {u: i for i, u in enumerate(self._order)}
        self._backward = [
            [w for w in pattern.adj(u) if position[w] < i]
            for i, u in enumerate(self._order)
        ]
        self._candidate_sets = {
            u: frozenset(int(v) for v in arr)
            for u, arr in self._candidates.items()
        }

    # ------------------------------------------------------------------
    def candidates(self, u: int) -> np.ndarray:
        """Filtered candidate array of query vertex ``u``."""
        return self._candidates[u]

    def run(self, limit: int | None = None) -> Iterator[tuple[int, ...]]:
        """Yield labeled embeddings as canonical tuples ``emb[u] = v``."""
        pattern = self.query.pattern
        n = pattern.num_vertices
        order = self._order
        mapping: dict[int, int] = {}
        used: set[int] = set()
        emitted = 0

        def extend(position: int) -> Iterator[tuple[int, ...]]:
            nonlocal emitted
            self.stats.recursive_calls += 1
            u = order[position]
            allowed = self._candidate_sets[u]
            backward = self._backward[position]
            arrays = sorted(
                (self.data.neighbors(mapping[w]) for w in backward), key=len
            )
            cands = arrays[0]
            for arr in arrays[1:]:
                self.stats.intersections += min(len(cands), len(arr))
                cands = np.intersect1d(cands, arr, assume_unique=True)
            self.stats.candidates_scanned += len(cands)
            for v in cands:
                v = int(v)
                if v in used or v not in allowed:
                    continue
                mapping[u] = v
                used.add(v)
                if position + 1 == n:
                    self.stats.embeddings += 1
                    emitted += 1
                    yield tuple(mapping[w] for w in range(n))
                else:
                    yield from extend(position + 1)
                used.discard(v)
                del mapping[u]
                if limit is not None and emitted >= limit:
                    return

        start = order[0]
        for v0 in self._candidates[start]:
            v0 = int(v0)
            mapping[start] = v0
            used.add(v0)
            if n == 1:
                self.stats.embeddings += 1
                emitted += 1
                yield (v0,)
            else:
                yield from extend(1)
            used.discard(v0)
            del mapping[start]
            if limit is not None and emitted >= limit:
                return


def labeled_embeddings(
    data: LabeledGraph,
    query: LabeledPattern,
    use_nlf: bool = True,
    limit: int | None = None,
    stats: EnumerationStats | None = None,
) -> list[tuple[int, ...]]:
    """Convenience wrapper returning all labeled embeddings."""
    enumerator = LabeledEnumerator(
        data=data,
        query=query,
        use_nlf=use_nlf,
        stats=stats or EnumerationStats(),
    )
    return list(enumerator.run(limit=limit))
