"""VF2-style subgraph enumeration (Cordella et al., TPAMI 2004).

The replication-based baseline (:mod:`repro.engines.replication`) follows
Fan et al.'s recipe of running "a serial algorithm (e.g., VF2)" per
machine, so this module provides that serial algorithm.  It is also an
independent implementation of the same semantics as
:class:`repro.enumeration.backtracking.BacktrackingEnumerator` —
the property-based tests cross-check the two against each other.

The enumerator searches for *monomorphisms* (every pattern edge must map
to a data edge; non-edges are unconstrained), which is the subgraph
semantics of the paper.  Feasibility combines VF2's consistency rule
(matched pattern neighbours must map to data neighbours) with the
monomorphism-safe lookahead (a candidate needs at least as many unmatched
neighbours as the pattern vertex has unmatched neighbours).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.enumeration.backtracking import (
    EnumerationStats,
    compute_matching_order,
)
from repro.query.pattern import Pattern
from repro.query.symmetry import constraint_map


@dataclass
class VF2Enumerator:
    """Serial VF2-style enumerator bound to a pattern and adjacency source.

    Parameters mirror :class:`BacktrackingEnumerator`: ``adjacency`` maps a
    data vertex to its sorted neighbour array, ``allowed`` optionally
    restricts matchable data vertices, and ``constraints`` are
    symmetry-breaking pairs ``(u, u')`` requiring ``f(u) < f(u')``.
    """

    pattern: Pattern
    adjacency: Callable[[int], np.ndarray]
    constraints: list[tuple[int, int]] = field(default_factory=list)
    order: list[int] | None = None
    allowed: Callable[[int], bool] | None = None
    stats: EnumerationStats = field(default_factory=EnumerationStats)

    def __post_init__(self) -> None:
        if self.order is None:
            self.order = compute_matching_order(self.pattern)
        if set(self.order) != set(self.pattern.vertices()):
            raise ValueError("order must cover all pattern vertices")
        position = {u: i for i, u in enumerate(self.order)}
        self._position = position
        n = self.pattern.num_vertices
        # Pattern neighbours matched before / after each position.
        self._backward = [
            [w for w in self.pattern.adj(u) if position[w] < i]
            for i, u in enumerate(self.order)
        ]
        self._forward_count = [
            sum(1 for w in self.pattern.adj(u) if position[w] > i)
            for i, u in enumerate(self.order)
        ]
        smaller, greater = constraint_map(self.constraints, n)
        self._smaller = smaller
        self._greater = greater

    # ------------------------------------------------------------------
    def _neighbor_set(self, v: int) -> set[int]:
        arr = self.adjacency(v)
        return {int(w) for w in arr}

    def _feasible(
        self,
        position: int,
        v: int,
        mapping: dict[int, int],
        used: set[int],
    ) -> bool:
        """VF2 feasibility of the candidate pair ``(order[position], v)``."""
        u = self.order[position]
        if v in used:
            return False
        if self.allowed is not None and not self.allowed(v):
            return False
        neighbors = self._neighbor_set(v)
        self.stats.candidates_scanned += 1
        # Consistency: every matched pattern neighbour maps into adj(v).
        for w in self._backward[position]:
            if mapping[w] not in neighbors:
                return False
        # Lookahead: enough unmatched data neighbours remain for the
        # pattern vertex's unmatched neighbours (monomorphism-safe >=).
        unmatched = sum(1 for x in neighbors if x not in used)
        if unmatched < self._forward_count[position]:
            return False
        # Symmetry-breaking bounds against already-matched partners.
        for w in self._greater[u]:
            if w in mapping and mapping[w] >= v:
                return False
        for w in self._smaller[u]:
            if w in mapping and mapping[w] <= v:
                return False
        return True

    # ------------------------------------------------------------------
    def run(
        self,
        start_candidates: Iterable[int],
        limit: int | None = None,
    ) -> Iterator[tuple[int, ...]]:
        """Yield embeddings as canonical tuples ``emb[u] = v``."""
        order = self.order
        n = self.pattern.num_vertices
        mapping: dict[int, int] = {}
        used: set[int] = set()
        emitted = 0

        def extend(position: int) -> Iterator[tuple[int, ...]]:
            nonlocal emitted
            self.stats.recursive_calls += 1
            u = order[position]
            # VF2 draws candidates from the data-side terminal set: the
            # neighbourhood of an already-matched pattern neighbour
            # (patterns are connected, so one always exists past position 0).
            anchor = self._backward[position][0]
            for v in self.adjacency(mapping[anchor]):
                v = int(v)
                if not self._feasible(position, v, mapping, used):
                    continue
                mapping[u] = v
                used.add(v)
                if position + 1 == n:
                    self.stats.embeddings += 1
                    emitted += 1
                    yield tuple(mapping[w] for w in range(n))
                else:
                    yield from extend(position + 1)
                used.discard(v)
                del mapping[u]
                if limit is not None and emitted >= limit:
                    return

        for v0 in start_candidates:
            v0 = int(v0)
            if not self._feasible(0, v0, mapping, used):
                continue
            mapping[order[0]] = v0
            used.add(v0)
            if n == 1:
                emitted += 1
                yield (v0,)
            else:
                yield from extend(1)
            used.discard(v0)
            del mapping[order[0]]
            if limit is not None and emitted >= limit:
                return


def vf2_embeddings(
    adjacency: Callable[[int], np.ndarray],
    vertices: Iterable[int],
    pattern: Pattern,
    constraints: list[tuple[int, int]] | None = None,
    order: list[int] | None = None,
    allowed: Callable[[int], bool] | None = None,
    limit: int | None = None,
    stats: EnumerationStats | None = None,
) -> list[tuple[int, ...]]:
    """Convenience wrapper mirroring
    :func:`repro.enumeration.backtracking.enumerate_embeddings`."""
    enumerator = VF2Enumerator(
        pattern=pattern,
        adjacency=adjacency,
        constraints=constraints or [],
        order=order,
        allowed=allowed,
        stats=stats or EnumerationStats(),
    )
    return list(enumerator.run(vertices, limit=limit))
