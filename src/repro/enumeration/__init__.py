"""Generic single-machine subgraph enumeration (TurboIso-style backtracking).

This is both the ground-truth oracle for tests and the SM-E algorithm that
RADS runs on each machine's interior (paper Sec. 3.1).
"""

from repro.enumeration.backtracking import (
    BacktrackingEnumerator,
    EnumerationStats,
    compute_matching_order,
    enumerate_embeddings,
)
from repro.enumeration.vf2 import VF2Enumerator, vf2_embeddings
from repro.enumeration.labeled import (
    LabeledEnumerator,
    LabeledPattern,
    candidate_sets,
    labeled_embeddings,
)

__all__ = [
    "BacktrackingEnumerator",
    "EnumerationStats",
    "compute_matching_order",
    "enumerate_embeddings",
    "VF2Enumerator",
    "vf2_embeddings",
    "LabeledEnumerator",
    "LabeledPattern",
    "candidate_sets",
    "labeled_embeddings",
]
