"""Observability: tracing, timing histograms, metrics exposition.

Zero-dependency instrumentation threaded through every layer of the
system (PR 9):

- :mod:`repro.obs.trace` — nested spans with context propagation.
  ``Session.run(trace=True)`` or a ``submit`` op carrying
  ``trace: true`` opens a root span; engines open per-round spans via
  :meth:`~repro.engines.base.EnumerationEngine.round_span`; executors
  open per-batch spans; the distributed protocol carries the trace
  context on ``task`` messages so shard workers emit child spans that
  ship back beside results and reassemble into one tree.  Off by
  default: the disabled path is a single context-variable read.
- :mod:`repro.obs.hist` — fixed-bucket latency/queue-wait/cache-lookup
  histograms (p50/p95/p99 in the ``metrics`` op) and the slow-query
  ring buffer.
- :mod:`repro.obs.expo` — Prometheus-style text exposition of the
  metrics document (``metrics`` op with ``format: "text"``).
- :mod:`repro.obs.counters` — the registry of every
  ``RunResult.counters`` namespace, asserted by tier-1 tests.
- :mod:`repro.obs.profile` — per-request resource profiles (PR 10):
  ``Session.run(profile=True)`` or a ``submit`` op carrying
  ``profile: true`` measures CPU/memory/GC around the request, folds
  the span tree into a flame table (self-time by span name), and
  attributes CPU to shard workers via rusage rows shipped back on task
  responses.
- :mod:`repro.obs.events` — the structured event journal: a bounded
  ring of leveled, JSON-safe records emitted at every state transition
  that previously only bumped a counter (worker lost/joined/stale,
  batch resubmit/retry, quota/admission rejections, cache evictions,
  disk-spill errors, graph rebinds, watch drops), served by the
  ``events`` op and ``repro events``.
- :mod:`repro.obs.health` — declarative SLO rules over the metrics
  snapshot (p95 latency, error rate, queue depth, stale shards, disk
  errors, unreplaced worker loss) behind the ``health`` op and
  ``repro health``.

See the "Observability" sections of ROADMAP.md for the span, profile,
event and health schemas, histogram buckets, and exposition format.
"""

from repro.obs.counters import KNOWN_COUNTERS, unknown_counters
from repro.obs.events import EventJournal, KNOWN_KINDS, emit, journal
from repro.obs.expo import render_text
from repro.obs.health import HealthEngine
from repro.obs.hist import DEFAULT_BUCKETS, Histogram, SlowQueryLog
from repro.obs.profile import (
    Profiler,
    attach_worker_usage,
    current_profiler,
    flame_table,
    profile_active,
)
from repro.obs.trace import (
    Span,
    Tracer,
    attach_spans,
    current_span,
    remote_span,
    span,
    span_names,
    wire_context,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "EventJournal",
    "HealthEngine",
    "Histogram",
    "KNOWN_COUNTERS",
    "KNOWN_KINDS",
    "Profiler",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "attach_spans",
    "attach_worker_usage",
    "current_profiler",
    "current_span",
    "emit",
    "flame_table",
    "journal",
    "profile_active",
    "remote_span",
    "render_text",
    "span",
    "span_names",
    "unknown_counters",
    "wire_context",
]
