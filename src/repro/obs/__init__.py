"""Observability: tracing, timing histograms, metrics exposition.

Zero-dependency instrumentation threaded through every layer of the
system (PR 9):

- :mod:`repro.obs.trace` — nested spans with context propagation.
  ``Session.run(trace=True)`` or a ``submit`` op carrying
  ``trace: true`` opens a root span; engines open per-round spans via
  :meth:`~repro.engines.base.EnumerationEngine.round_span`; executors
  open per-batch spans; the distributed protocol carries the trace
  context on ``task`` messages so shard workers emit child spans that
  ship back beside results and reassemble into one tree.  Off by
  default: the disabled path is a single context-variable read.
- :mod:`repro.obs.hist` — fixed-bucket latency/queue-wait/cache-lookup
  histograms (p50/p95/p99 in the ``metrics`` op) and the slow-query
  ring buffer.
- :mod:`repro.obs.expo` — Prometheus-style text exposition of the
  metrics document (``metrics`` op with ``format: "text"``).
- :mod:`repro.obs.counters` — the registry of every
  ``RunResult.counters`` namespace, asserted by tier-1 tests.

See the "Observability (PR 9)" section of ROADMAP.md for the span
schema, histogram buckets, and exposition format.
"""

from repro.obs.counters import KNOWN_COUNTERS, unknown_counters
from repro.obs.expo import render_text
from repro.obs.hist import DEFAULT_BUCKETS, Histogram, SlowQueryLog
from repro.obs.trace import (
    Span,
    Tracer,
    attach_spans,
    current_span,
    remote_span,
    span,
    span_names,
    wire_context,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "KNOWN_COUNTERS",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "attach_spans",
    "current_span",
    "remote_span",
    "render_text",
    "span",
    "span_names",
    "unknown_counters",
    "wire_context",
]
