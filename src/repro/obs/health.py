"""Declarative SLO rules over the service's metrics snapshot.

:class:`HealthEngine` turns the ``metrics`` payload the query server
already assembles — histogram snapshots, scheduler counters, cache
stats, the shard-registry health view — into one operational verdict:
``ok``, ``degraded`` or ``critical``, together with the rules that are
firing and the evidence each one fired on.  The rules are *declarative*
in the sense that each is a named threshold over fields the snapshot
already carries; nothing here measures anything new, so evaluating is
cheap enough for ``repro health --watch`` to poll.

Built-in rules (every threshold is a constructor knob):

- ``latency_p95`` — the ``latency`` histogram's p95 exceeds the ceiling
  (only once ``min_samples`` requests have completed, so a cold server
  is not judged on one slow warmup query);
- ``error_rate`` — failed / (completed + failed) exceeds the budget,
  again gated on ``min_samples`` finished requests;
- ``queue_depth`` — more requests queued than the backlog bound
  (admission control is about to hurt);
- ``stale_shards`` — announced workers that stopped heartbeating
  (``stale`` flags in the registry snapshot);
- ``disk_errors`` — the cache's disk-tier error counter exceeded its
  budget (spills are failing; the persistent tier is lying down);
- ``worker_loss`` — a ``worker.lost`` event with no later
  ``worker.joined``: a roster member died and no replacement has
  announced yet.  This is the one event-sourced rule — losses are
  transitions, not gauges, so the journal is their system of record.

``critical`` is reserved for rules whose firing means answers are being
refused or lost (error rate); everything else degrades.  Transitions are
journaled: the engine emits ``health.rule_fired`` when a rule starts
firing and ``health.rule_cleared`` when it stops, so the event journal
records *when* the service crossed each line, not just that it is
currently over it.
"""

from __future__ import annotations

from typing import Any

from repro.obs import events as _events

__all__ = ["HealthEngine", "STATUSES"]

#: Verdict ladder, healthiest first.
STATUSES = ("ok", "degraded", "critical")


def _shed(metrics: dict, *path: str) -> Any:
    """``metrics[a][b]...`` with missing/None segments collapsing to None."""
    node: Any = metrics
    for key in path:
        if not isinstance(node, dict):
            return None
        node = node.get(key)
    return node


class HealthEngine:
    """Evaluates the SLO rule set against one metrics snapshot.

    Thresholds are fixed at construction; :meth:`evaluate` is stateless
    apart from remembering which rules were firing last time (to emit
    fired/cleared transition events into ``journal``, the process
    default when omitted).
    """

    def __init__(
        self,
        *,
        p95_latency_seconds: float = 30.0,
        min_samples: int = 16,
        error_rate: float = 0.5,
        queue_depth: int = 64,
        stale_shards: int = 1,
        disk_error_budget: int = 8,
        journal: "_events.EventJournal | None" = None,
    ):
        self.p95_latency_seconds = p95_latency_seconds
        self.min_samples = min_samples
        self.error_rate = error_rate
        self.queue_depth = queue_depth
        self.stale_shards = stale_shards
        self.disk_error_budget = disk_error_budget
        self._journal = journal if journal is not None else _events.journal()
        self._firing: set[str] = set()

    # ------------------------------------------------------------------
    def _rules(self, metrics: dict) -> list[dict[str, Any]]:
        rules: list[dict[str, Any]] = []

        latency = _shed(metrics, "histograms", "latency") or {}
        samples = int(latency.get("count") or 0)
        p95 = float(latency.get("p95") or 0.0)
        rules.append({
            "name": "latency_p95",
            "severity": "degraded",
            "firing": (
                samples >= self.min_samples
                and p95 > self.p95_latency_seconds
            ),
            "evidence": {
                "p95_seconds": p95,
                "ceiling_seconds": self.p95_latency_seconds,
                "samples": samples,
            },
        })

        completed = int(_shed(metrics, "scheduler", "completed") or 0)
        failed = int(_shed(metrics, "scheduler", "failed") or 0)
        finished = completed + failed
        rate = (failed / finished) if finished else 0.0
        rules.append({
            "name": "error_rate",
            "severity": "critical",
            "firing": (
                finished >= self.min_samples and rate > self.error_rate
            ),
            "evidence": {
                "rate": rate,
                "budget": self.error_rate,
                "failed": failed,
                "finished": finished,
            },
        })

        queued = int(_shed(metrics, "scheduler", "queued") or 0)
        rules.append({
            "name": "queue_depth",
            "severity": "degraded",
            "firing": queued > self.queue_depth,
            "evidence": {"queued": queued, "bound": self.queue_depth},
        })

        registry = _shed(metrics, "shards", "registry") or []
        stale = [
            entry["address"]
            for entry in registry
            if isinstance(entry, dict) and entry.get("stale")
        ]
        rules.append({
            "name": "stale_shards",
            "severity": "degraded",
            "firing": len(stale) >= self.stale_shards,
            "evidence": {
                "stale": stale,
                "announced": len(registry),
                "bound": self.stale_shards,
            },
        })

        disk_errors = int(_shed(metrics, "cache", "disk", "errors") or 0)
        rules.append({
            "name": "disk_errors",
            "severity": "degraded",
            "firing": disk_errors > self.disk_error_budget,
            "evidence": {
                "errors": disk_errors,
                "budget": self.disk_error_budget,
            },
        })

        # Event-sourced: a loss with no later join means a dead roster
        # member nobody has replaced.  Sequence order, not wall time —
        # the journal's seq is the one total order both kinds share.
        lost = self._journal.last(_events.WORKER_LOST)
        joined = self._journal.last(_events.WORKER_JOINED)
        lost_unreplaced = lost is not None and (
            joined is None or joined["seq"] < lost["seq"]
        )
        evidence: dict[str, Any] = {
            "lost_seq": None if lost is None else lost["seq"],
            "joined_seq": None if joined is None else joined["seq"],
        }
        if lost_unreplaced:
            evidence["address"] = lost.get("address")
            if "trace_id" in lost:
                evidence["trace_id"] = lost["trace_id"]
        rules.append({
            "name": "worker_loss",
            "severity": "degraded",
            "firing": lost_unreplaced,
            "evidence": evidence,
        })

        return rules

    # ------------------------------------------------------------------
    def evaluate(self, metrics: dict) -> dict[str, Any]:
        """The health verdict for one metrics snapshot (JSON-safe).

        Returns ``{"status", "rules", "firing"}`` where ``rules`` lists
        every rule with its ``firing`` flag and evidence and ``firing``
        names just the active ones.  Rule transitions since the previous
        call are emitted into the journal.
        """
        rules = self._rules(metrics)
        firing = {rule["name"] for rule in rules if rule["firing"]}
        for rule in rules:
            name = rule["name"]
            if rule["firing"] and name not in self._firing:
                self._journal.emit(
                    "warning",
                    "health",
                    _events.HEALTH_RULE_FIRED,
                    rule=name,
                    severity=rule["severity"],
                )
            elif not rule["firing"] and name in self._firing:
                self._journal.emit(
                    "info",
                    "health",
                    _events.HEALTH_RULE_CLEARED,
                    rule=name,
                )
        self._firing = firing

        status = "ok"
        for rule in rules:
            if not rule["firing"]:
                continue
            if rule["severity"] == "critical":
                status = "critical"
                break
            status = "degraded"
        return {
            "status": status,
            "rules": rules,
            "firing": sorted(firing),
        }
