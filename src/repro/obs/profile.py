"""Per-request resource profiling: CPU, memory, GC, and the flame table.

Tracing (:mod:`repro.obs.trace`) answers *where* a request's wall time
went; a profile answers *why* — CPU burned vs. memory allocated vs. time
merely waited.  :class:`Profiler` wraps one request (``Session.run`` or
a scheduler execution) and records:

- wall seconds (:func:`time.perf_counter`) and CPU seconds — whole
  process (:func:`time.process_time`) and the running thread
  (:func:`time.thread_time`), so "CPU-bound here" vs. "waiting on
  workers" is one subtraction;
- peak and net-allocated bytes via :mod:`tracemalloc` (started
  refcounted while any profile is active: the instrument is
  process-global, so concurrent profiled requests share its view —
  peaks are the process's, not the request's, under concurrency);
- GC deltas (collections/collected/uncollectable summed over
  generations);
- a *flame table* aggregated from the request's span tree — per span
  name: occurrence count, total seconds, and **self** seconds (duration
  minus direct children, with concurrent children rescaled into their
  parent's wall time), so ``round.* / executor.batch / worker.task``
  hot spots rank without reading raw trees.  Self times telescope: they
  sum to the root duration, which is the acceptance bound profiled runs
  are tested against;
- per-worker CPU attribution for socket-backed runs: shard workers
  measure their own :func:`resource.getrusage` delta per task and ship
  it back on task responses (exactly like ``remote_span``); the
  coordinator accumulates them and the executor folds them into the
  active profiler via :func:`attach_worker_usage` — the profile's
  ``workers`` rows say which shard spent the CPU.

Propagation mirrors tracing: a context variable holds the active
:class:`Profiler` (``None`` = profiling off, the only cost the disabled
path pays), so executors and coordinators ask :func:`profile_active`
without any constructor threading.  Profiles observe, never perturb:
counts and stats are bit-identical with profiling on or off, results
served from the cache/store never carry one (the byte-stability
discipline), and the disabled path is guarded by
``benchmarks/test_ext_profiling_overhead``.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from contextvars import ContextVar
from typing import Any

try:  # Unix only; profiles degrade gracefully elsewhere.
    import resource as _resource
except ImportError:  # pragma: no cover - non-posix
    _resource = None  # type: ignore[assignment]

try:
    import tracemalloc as _tracemalloc
except ImportError:  # pragma: no cover - minimal builds
    _tracemalloc = None  # type: ignore[assignment]

__all__ = [
    "Profiler",
    "attach_worker_usage",
    "current_profiler",
    "flame_table",
    "profile_active",
    "task_rusage",
    "worker_usage",
]

#: The active profiler of the current context (``None`` = profiling off).
_CURRENT: ContextVar["Profiler | None"] = ContextVar(
    "repro_obs_profiler", default=None
)

# tracemalloc is process-global: refcount starts/stops so overlapping
# profiled requests share one tracing window instead of fighting over it.
_TM_LOCK = threading.Lock()
_TM_USERS = 0


def _tracemalloc_acquire() -> bool:
    global _TM_USERS
    if _tracemalloc is None:
        return False
    with _TM_LOCK:
        if _TM_USERS == 0 and not _tracemalloc.is_tracing():
            _tracemalloc.start()
        _TM_USERS += 1
    return True


def _tracemalloc_release() -> None:
    global _TM_USERS
    if _tracemalloc is None:
        return
    with _TM_LOCK:
        _TM_USERS = max(0, _TM_USERS - 1)
        if _TM_USERS == 0 and _tracemalloc.is_tracing():
            _tracemalloc.stop()


def _gc_totals() -> tuple[int, int, int]:
    collections = collected = uncollectable = 0
    for generation in gc.get_stats():
        collections += generation.get("collections", 0)
        collected += generation.get("collected", 0)
        uncollectable += generation.get("uncollectable", 0)
    return collections, collected, uncollectable


class Profiler:
    """Measures one request between ``__enter__`` and ``__exit__``.

    Entering installs this profiler as the context's active one (so
    downstream executors attribute worker usage to it) and snapshots the
    clocks; exiting computes the deltas.  :meth:`result` then assembles
    the JSON-safe profile record, optionally folding in a span tree for
    the flame table.
    """

    def __init__(self) -> None:
        self._token = None
        self._tracing_memory = False
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._thread0 = 0.0
        self._mem0 = 0
        self._gc0 = (0, 0, 0)
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.thread_seconds = 0.0
        self.peak_bytes: int | None = None
        self.allocated_bytes: int | None = None
        self.gc_deltas = (0, 0, 0)
        self._usage_lock = threading.Lock()
        #: (shard, pid, mode) -> accumulated rusage row.
        self._workers: dict[tuple, dict[str, Any]] = {}

    # ------------------------------------------------------------------
    def __enter__(self) -> "Profiler":
        self._token = _CURRENT.set(self)
        self._tracing_memory = _tracemalloc_acquire()
        if self._tracing_memory:
            current, _ = _tracemalloc.get_traced_memory()
            self._mem0 = current
            # Peaks are measured from here; under concurrent profiled
            # requests the reset is shared (documented above).
            _tracemalloc.reset_peak()
        self._gc0 = _gc_totals()
        self._cpu0 = time.process_time()
        self._thread0 = time.thread_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.wall_seconds = time.perf_counter() - self._wall0
        self.cpu_seconds = time.process_time() - self._cpu0
        self.thread_seconds = time.thread_time() - self._thread0
        gc1 = _gc_totals()
        self.gc_deltas = tuple(
            after - before for after, before in zip(gc1, self._gc0)
        )
        if self._tracing_memory:
            current, peak = _tracemalloc.get_traced_memory()
            self.peak_bytes = peak
            self.allocated_bytes = current - self._mem0
            _tracemalloc_release()
            self._tracing_memory = False
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None

    # ------------------------------------------------------------------
    def add_worker_usage(
        self, usages: "list[dict[str, Any]] | None"
    ) -> None:
        """Fold per-task worker rusage rows into the per-worker totals."""
        if not usages:
            return
        with self._usage_lock:
            for usage in usages:
                key = (
                    usage.get("shard"),
                    usage.get("pid"),
                    usage.get("mode"),
                )
                row = self._workers.get(key)
                if row is None:
                    row = self._workers[key] = {
                        "shard": usage.get("shard"),
                        "pid": usage.get("pid"),
                        "mode": usage.get("mode"),
                        "tasks": 0,
                        "utime": 0.0,
                        "stime": 0.0,
                        "maxrss_kb": 0,
                    }
                row["tasks"] += 1
                row["utime"] += float(usage.get("utime", 0.0))
                row["stime"] += float(usage.get("stime", 0.0))
                row["maxrss_kb"] = max(
                    row["maxrss_kb"], int(usage.get("maxrss_kb", 0))
                )

    def worker_rows(self) -> list[dict[str, Any]]:
        """Accumulated per-worker usage, busiest (CPU) first."""
        with self._usage_lock:
            rows = [dict(row) for row in self._workers.values()]
        rows.sort(key=lambda r: r["utime"] + r["stime"], reverse=True)
        return rows

    # ------------------------------------------------------------------
    def result(
        self, tree: "dict[str, Any] | None" = None
    ) -> dict[str, Any]:
        """The JSON-safe profile record (call after ``__exit__``)."""
        collections, collected, uncollectable = self.gc_deltas
        record: dict[str, Any] = {
            "wall_seconds": self.wall_seconds,
            "cpu": {
                "process_seconds": self.cpu_seconds,
                "thread_seconds": self.thread_seconds,
            },
            "memory": {
                "peak_bytes": self.peak_bytes,
                "allocated_bytes": self.allocated_bytes,
            },
            "gc": {
                "collections": collections,
                "collected": collected,
                "uncollectable": uncollectable,
            },
            "flame": flame_table(tree),
            "workers": self.worker_rows(),
        }
        return record


# ----------------------------------------------------------------------
# Module-level surface (mirrors repro.obs.trace)
# ----------------------------------------------------------------------
def current_profiler() -> "Profiler | None":
    """The context's active profiler (``None`` = profiling off)."""
    return _CURRENT.get()


def profile_active() -> bool:
    """Whether a profiler is active in this context (one ContextVar read)."""
    return _CURRENT.get() is not None


def attach_worker_usage(usages: "list[dict[str, Any]] | None") -> None:
    """Fold shipped-back worker rusage rows into the active profiler."""
    profiler = _CURRENT.get()
    if profiler is not None:
        profiler.add_worker_usage(usages)


# ----------------------------------------------------------------------
# Flame table
# ----------------------------------------------------------------------
def flame_table(
    tree: "dict[str, Any] | None",
) -> list[dict[str, Any]]:
    """Self-time aggregation of a span tree, hottest names first.

    One row per span name: ``count`` occurrences, ``total`` seconds
    (summed raw durations) and ``self`` seconds — the wall time
    attributed to the span itself after handing out its children's
    shares.  Children that sum past their parent's duration (shard
    tasks run *concurrently* under one ``executor.batch`` span; cross
    -host clocks jitter) are rescaled proportionally so they divide
    exactly the parent's wall time between them.  Every node therefore
    hands out no more time than it was handed, which makes the ``self``
    column telescope: it sums to the root duration exactly — the
    acceptance bound profiled runs are tested against.  ``total`` stays
    the unscaled sum, so concurrency still shows (a row's total may
    exceed the root; self never does).
    """
    if not tree:
        return []
    totals: dict[str, list[float]] = {}

    def visit(node: dict[str, Any], scale: float) -> None:
        raw = node.get("duration") or 0.0
        children = node.get("children", ())
        raw_children = sum((c.get("duration") or 0.0) for c in children)
        child_scale = scale
        if raw_children > raw:
            child_scale = scale * (raw / raw_children) if raw > 0 else 0.0
        for child in children:
            visit(child, child_scale)
        duration = raw * scale
        row = totals.setdefault(node["name"], [0, 0.0, 0.0])
        row[0] += 1
        row[1] += raw
        row[2] += max(0.0, duration - raw_children * child_scale)

    visit(tree, 1.0)
    table = [
        {"name": name, "count": int(count), "total": total, "self": own}
        for name, (count, total, own) in totals.items()
    ]
    table.sort(key=lambda r: (-r["self"], r["name"]))
    return table


# ----------------------------------------------------------------------
# Worker-side rusage measurement (no Profiler object on the worker)
# ----------------------------------------------------------------------
def task_rusage() -> Any:
    """Snapshot this process's rusage (``None`` where unsupported).

    The shard worker takes one before executing a profiled task and
    hands it to :func:`worker_usage` afterwards.
    """
    if _resource is None:  # pragma: no cover - non-posix
        return None
    return _resource.getrusage(_resource.RUSAGE_SELF)


def worker_usage(
    before: Any, *, shard: str, mode: str
) -> dict[str, Any]:
    """One task's JSON-safe usage row from a :func:`task_rusage` baseline.

    ``utime``/``stime`` are the worker process's CPU delta across the
    task.  In ``pool`` mode the task body ran in a child process, so the
    parent-side delta covers dispatch/serialization only — the row is
    still shipped (wall attribution per shard stays right) with ``mode``
    marking the caveat.
    """
    row: dict[str, Any] = {
        "shard": shard,
        "pid": os.getpid(),
        "mode": mode,
        "utime": 0.0,
        "stime": 0.0,
        "maxrss_kb": 0,
    }
    if _resource is None or before is None:  # pragma: no cover - non-posix
        return row
    after = _resource.getrusage(_resource.RUSAGE_SELF)
    row["utime"] = after.ru_utime - before.ru_utime
    row["stime"] = after.ru_stime - before.ru_stime
    # ru_maxrss is KiB on Linux (bytes on macOS; close enough for a gauge).
    row["maxrss_kb"] = int(after.ru_maxrss)
    return row
