"""Zero-dependency tracing: nested spans with cross-process propagation.

A *span* is one timed region of a query's life — the root ``Session.run``
or scheduler execution, an engine round, an executor batch, a task on a
remote shard worker — recorded as a JSON-safe dict::

    {"trace_id": "6f1c…", "span_id": "a03d…", "parent": "ff02…" | None,
     "name": "round.r-meef", "start": 12.031, "duration": 0.184,
     "attributes": {"machines": 4}}

``trace_id`` names the whole tree, ``span_id``/``parent`` link it,
``start`` is a *local* monotonic reading (:func:`time.perf_counter` —
comparable only between spans from the same process; cross-host ordering
relies on the parent links, not the clocks), ``duration`` is seconds.

Propagation is a pair of context variables: :data:`_CURRENT` holds the
innermost open :class:`Span` of the calling context.  Instrumented code
never checks "is tracing on" — it calls the module-level :func:`span`
helper, which is a single ``ContextVar.get()`` plus ``None`` check when
no trace is active (the shared no-op below), so the disabled path costs
nothing measurable.  A :class:`Tracer` is only ever constructed at a
root: ``Session.run(trace=True)`` or a ``submit`` carrying
``trace: true``.

Crossing the wire: :func:`wire_context` snapshots ``(trace_id, current
span_id)`` into a JSON-safe dict that rides on distributed ``task``
messages; the shard worker builds leaf span dicts against that parent
with :func:`remote_span` (no tracer object on the worker — just dicts)
and ships them back beside the task result; the coordinator side calls
:func:`attach_spans` to fold them into the live tracer, so the finished
tree is one connected structure spanning processes and hosts.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextvars import ContextVar
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "attach_spans",
    "current_span",
    "remote_span",
    "span",
    "span_names",
    "wire_context",
]


def _new_id() -> str:
    """A fresh 16-hex-digit identifier (random, not time-derived)."""
    return uuid.uuid4().hex[:16]


#: The innermost open span of the current thread/context, or ``None``
#: when tracing is off — the one lookup every instrumentation site pays.
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)


class _NoopSpan:
    """Shared do-nothing context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attributes: Any) -> None:
        """Attribute updates are discarded (matches :meth:`Span.set`)."""


#: The single no-op instance (allocation-free disabled path).
_NOOP = _NoopSpan()


class Span:
    """One open timed region; use as a context manager.

    Entering records the start (:func:`time.perf_counter`) and makes this
    span the context's current span; exiting computes the duration,
    restores the previous current span, and hands the finished record to
    the owning tracer.  Attributes are JSON-safe annotations (machine
    counts, task counts, shard addresses …) — never values that feed back
    into the computation: spans observe, they must not perturb.
    """

    __slots__ = (
        "tracer",
        "span_id",
        "parent",
        "name",
        "start",
        "duration",
        "attributes",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: str | None,
        attributes: dict[str, Any],
    ):
        self.tracer = tracer
        self.span_id = _new_id()
        self.parent = parent
        self.name = name
        self.start = 0.0
        self.duration: float | None = None
        self.attributes = attributes
        self._token = None

    def set(self, **attributes: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.attributes.setdefault("error", repr(exc))
        _CURRENT.reset(self._token)
        self.tracer._record(self)

    def to_dict(self) -> dict[str, Any]:
        """The JSON-safe flat record (see the module docstring schema)."""
        return {
            "trace_id": self.tracer.trace_id,
            "span_id": self.span_id,
            "parent": self.parent,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """Collects the finished spans of one trace and assembles the tree.

    Thread-safe: spans finish on whatever thread ran them, and shard
    workers' span dicts are folded in via :meth:`attach` from coordinator
    threads.
    """

    def __init__(self, trace_id: str | None = None):
        self.trace_id = trace_id or _new_id()
        self._lock = threading.Lock()
        self._spans: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    def root(self, name: str, **attributes: Any) -> Span:
        """A parentless span — the top of the tree (one per trace)."""
        return Span(self, name, parent=None, attributes=attributes)

    def start_span(
        self, name: str, parent: Span, attributes: dict[str, Any]
    ) -> Span:
        return Span(self, name, parent=parent.span_id, attributes=attributes)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span.to_dict())

    def attach(self, span_dicts: "list[dict[str, Any]] | None") -> None:
        """Fold foreign (remote-worker) span dicts into this trace."""
        if not span_dicts:
            return
        with self._lock:
            self._spans.extend(dict(s) for s in span_dicts)

    def spans(self) -> list[dict[str, Any]]:
        """Finished span records, in completion order."""
        with self._lock:
            return [dict(s) for s in self._spans]

    # ------------------------------------------------------------------
    def tree(self) -> dict[str, Any] | None:
        """The nested span tree, or ``None`` before any span finished.

        Children sort by their local start time (meaningful within one
        process; remote siblings keep attach order between themselves).
        Spans whose parent never made it back (a worker span raced a
        shard fault, say) re-root under the tree root rather than being
        dropped — a gappy trace beats a silently truncated one.
        """
        with self._lock:
            spans = [dict(s) for s in self._spans]
        if not spans:
            return None
        by_id = {s["span_id"]: s for s in spans}
        roots: list[dict[str, Any]] = []
        orphans: list[dict[str, Any]] = []
        children: dict[str, list[dict[str, Any]]] = {}
        for s in spans:
            parent = s["parent"]
            if parent is None:
                roots.append(s)
            elif parent in by_id:
                children.setdefault(parent, []).append(s)
            else:
                orphans.append(s)
        if not roots:  # root still open or lost: synthesize one
            roots = [{
                "trace_id": self.trace_id,
                "span_id": "root",
                "parent": None,
                "name": "(incomplete)",
                "start": 0.0,
                "duration": None,
                "attributes": {},
            }]
        children.setdefault(roots[0]["span_id"], []).extend(orphans)

        def build(record: dict[str, Any]) -> dict[str, Any]:
            kids = sorted(
                children.get(record["span_id"], []),
                key=lambda s: s["start"],
            )
            return {
                "trace_id": record["trace_id"],
                "span_id": record["span_id"],
                "parent": record["parent"],
                "name": record["name"],
                "start": record["start"],
                "duration": record["duration"],
                "attributes": record["attributes"],
                "children": [build(k) for k in kids],
            }

        return build(roots[0])


# ----------------------------------------------------------------------
# Module-level instrumentation surface
# ----------------------------------------------------------------------
def span(name: str, **attributes: Any) -> "Span | _NoopSpan":
    """Open a child span of the context's current span (or do nothing).

    This is the only call instrumented code makes.  With no active trace
    it is a context-variable read and a ``None`` check returning a shared
    no-op context manager — cheap enough to leave in every hot path.
    """
    parent = _CURRENT.get()
    if parent is None:
        return _NOOP
    return parent.tracer.start_span(name, parent, attributes)


def current_span() -> "Span | None":
    """The innermost open span of this context (``None`` = tracing off)."""
    return _CURRENT.get()


def wire_context() -> dict[str, str] | None:
    """JSON-safe propagation context for a remote child, or ``None``.

    Rides on distributed ``task`` messages; the worker parents its spans
    on ``parent`` so the shipped-back records slot into the live tree.
    """
    current = _CURRENT.get()
    if current is None:
        return None
    return {
        "trace_id": current.tracer.trace_id,
        "parent": current.span_id,
    }


def attach_spans(span_dicts: "list[dict[str, Any]] | None") -> None:
    """Fold remote span dicts into the context's live trace (if any)."""
    current = _CURRENT.get()
    if current is not None:
        current.tracer.attach(span_dicts)


def remote_span(
    context: dict[str, str],
    name: str,
    start: float,
    duration: float,
    **attributes: Any,
) -> dict[str, Any]:
    """A finished span dict built on a remote worker (no tracer there).

    ``context`` is the :func:`wire_context` dict from the task message;
    ``start`` is the worker's local :func:`time.perf_counter` reading.
    """
    return {
        "trace_id": context["trace_id"],
        "span_id": _new_id(),
        "parent": context["parent"],
        "name": name,
        "start": start,
        "duration": duration,
        "attributes": dict(attributes),
    }


def span_names(tree: "dict[str, Any] | None") -> Iterator[str]:
    """Every span name in a :meth:`Tracer.tree` dict, depth-first."""
    if not tree:
        return
    yield tree["name"]
    for child in tree.get("children", ()):
        yield from span_names(child)
