"""The one registry of ``RunResult.counters`` names and namespaces.

Counters accumulate in two distinct layers, distinguishable by the dot:

- **Namespaced** (``layer.name``) — attached by infrastructure *around*
  an enumeration: the service tier's cache/dedup/store annotations, the
  distributed backend's fault counters, the streaming layer's drop
  accounting.  Every namespaced counter any layer may emit is spelled
  here, and tier-1 tests assert emitted names against this registry, so
  a typo'd key fails CI instead of silently forking a new time series.
- **Engine-level** (no dot, ``snake_case``) — per-machine operation and
  allocation counters charged inside the simulated cluster
  (``machine.charge_ops(ops, "join_ops")`` …) and merged across machines
  into ``RunResult.counters``.  These are open-ended by design (each
  engine names its own phases) and are constrained by *shape* only:
  :data:`ENGINE_COUNTER_PATTERN`.

The names are spelled literally rather than imported from their owning
modules: this module must stay importable from anywhere (including the
modules that own the constants) without cycles — the same reason
``repro.service.scheduler`` mirrors ``STORE_HIT_COUNTER`` instead of
importing :mod:`repro.store`.  ``tests/test_counter_registry.py`` pins
each literal to its source-of-truth constant, so the two spellings
cannot drift.
"""

from __future__ import annotations

import re
from typing import Iterable

__all__ = [
    "DISTRIBUTED_COUNTERS",
    "ENGINE_COUNTER_PATTERN",
    "KNOWN_COUNTERS",
    "SERVICE_COUNTERS",
    "WATCH_COUNTERS",
    "unknown_counters",
]

#: Service tier (``repro.service.cache`` / ``scheduler`` /
#: ``repro.store``): cache and store annotations stamped onto served
#: results.  ``service.cache_hit``, ``service.dedup`` and
#: ``service.store_hit`` are per-request flags (0/1); the ``…_hits`` /
#: ``…_misses`` / ``…_evictions`` trio are cumulative cache totals at
#: serve time.
SERVICE_COUNTERS = frozenset({
    "service.cache_hit",
    "service.cache_hits",
    "service.cache_misses",
    "service.cache_evictions",
    "service.dedup",
    "service.store_hit",
})

#: Distributed socket backend (``repro.distributed.coordinator``):
#: fault-path counters, attached only when they advanced during the run
#: (a healthy run carries neither key — bit-parity with local backends).
DISTRIBUTED_COUNTERS = frozenset({
    "distributed.resubmits",
    "distributed.lost_workers",
})

#: Streaming continuous queries (``repro.streaming.continuous``):
#: deltas that never reached a watch (quota rejection or pending-queue
#: overflow).  Reserved spelling for the ``dropped`` count surfaced by
#: the ``poll`` op and ``Watch.describe()``.
WATCH_COUNTERS = frozenset({
    "watch.dropped",
})

#: Every namespaced counter the system may emit.
KNOWN_COUNTERS = SERVICE_COUNTERS | DISTRIBUTED_COUNTERS | WATCH_COUNTERS

#: Engine-level (machine) counters: dotless snake_case, one namespace
#: per simulated cluster — e.g. ``join_ops``, ``sme_embeddings``,
#: ``alloc_bytes``, ``daemon_ops``.
ENGINE_COUNTER_PATTERN = re.compile(r"^[a-z][a-z0-9_]*$")


def unknown_counters(names: Iterable[str]) -> list[str]:
    """Counter names that belong to no documented layer (sorted).

    A namespaced (dotted) name must appear in :data:`KNOWN_COUNTERS`
    verbatim; a dotless name must match :data:`ENGINE_COUNTER_PATTERN`.
    An empty return means every name is accounted for.
    """
    bad = set()
    for name in names:
        if "." in name:
            if name not in KNOWN_COUNTERS:
                bad.add(name)
        elif not ENGINE_COUNTER_PATTERN.match(name):
            bad.add(name)
    return sorted(bad)
