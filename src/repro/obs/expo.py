"""Prometheus-style text exposition of the ``metrics`` op payload.

:func:`render_text` flattens the JSON metrics document (see
``QueryServer._metrics``) into the plain-text exposition format external
scrapers expect: one ``repro_``-prefixed family per numeric leaf, path
segments joined with underscores::

    # TYPE repro_scheduler_submitted gauge
    repro_scheduler_submitted 12
    # TYPE repro_histograms_latency_seconds histogram
    repro_histograms_latency_seconds_bucket{le="0.01"} 3
    ...
    repro_histograms_latency_seconds_sum 1.1472
    repro_histograms_latency_seconds_count 9

The renderer is schema-free on purpose: new counters added anywhere in
the metrics document show up as new families without touching this
module.  Dicts carrying a ``buckets`` list (the
:meth:`repro.obs.hist.Histogram.snapshot` shape) become histogram
families with ``le``-labelled cumulative buckets plus ``_sum`` and
``_count``; other numeric leaves become gauges; strings, nulls and
non-histogram lists (shard rosters, slow-query entries) are skipped —
they are structured diagnostics, not time series.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["render_text"]

#: Every family name starts with this (one metrics namespace per system).
PREFIX = "repro"


def _sanitize(segment: str) -> str:
    """A path segment as a metric-name token (``[a-zA-Z0-9_]`` only)."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in str(segment)
    )
    return cleaned or "_"


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(round(float(value), 9))


def _le_label(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else repr(float(bound))


def _render_histogram(name: str, snap: dict[str, Any], lines: list[str]) -> None:
    family = f"{name}_seconds"
    lines.append(f"# TYPE {family} histogram")
    for bucket in snap.get("buckets", ()):
        lines.append(
            f'{family}_bucket{{le="{_le_label(bucket["le"])}"}} '
            f'{int(bucket["count"])}'
        )
    lines.append(f"{family}_sum {_format_value(float(snap.get('sum', 0.0)))}")
    lines.append(f"{family}_count {int(snap.get('count', 0))}")
    for key in ("p50", "p95", "p99"):
        if key in snap:
            quantile = float(key[1:]) / 100.0
            lines.append(
                f'{family}{{quantile="{quantile:g}"}} '
                f"{_format_value(float(snap[key]))}"
            )


def _walk(prefix: str, node: Any, lines: list[str]) -> None:
    if isinstance(node, dict):
        if "buckets" in node and isinstance(node.get("buckets"), list):
            _render_histogram(prefix, node, lines)
            return
        for key, value in node.items():
            _walk(f"{prefix}_{_sanitize(key)}", value, lines)
        return
    if isinstance(node, bool) or isinstance(node, (int, float)):
        lines.append(f"# TYPE {prefix} gauge")
        lines.append(f"{prefix} {_format_value(node)}")
    # Strings, None and plain lists are structured diagnostics — skipped.


def render_text(metrics: dict[str, Any]) -> str:
    """The metrics document as Prometheus-style exposition text."""
    lines: list[str] = []
    _walk(PREFIX, metrics, lines)
    return "\n".join(lines) + "\n"
