"""Fixed-bucket timing histograms and the slow-query ring buffer.

:class:`Histogram` is the service tier's latency instrument: a fixed set
of upper-bound buckets (seconds, Prometheus ``le`` semantics — each
bucket counts observations ``<=`` its bound, with a final ``+inf``
catch-all) chosen once at construction so recording an observation is a
lock, a linear scan over ~a dozen floats, and an increment.  No
per-observation allocation, no unbounded reservoir: the memory cost is
``len(buckets) + 3`` numbers regardless of traffic, which is what lets
the scheduler keep one per instrument for the life of the process.

Quantiles (:meth:`Histogram.percentile`) interpolate linearly inside the
bucket containing the target rank — the standard fixed-bucket estimate:
exact bucket membership, approximate position within it.  The default
bucket ladder spans 100µs to 60s in roughly 1-2.5-5 steps, wide enough
for both sub-millisecond cache lookups and multi-second distributed
enumerations.

:class:`SlowQueryLog` is a bounded ring of the slowest recent requests —
pattern, engine, tenant, duration, and (when the request was traced) the
full span tree — so "what was slow and where did its time go" is one
``metrics`` call, not a log-diving expedition.
"""

from __future__ import annotations

import math
import threading
from typing import Any

__all__ = ["DEFAULT_BUCKETS", "Histogram", "SlowQueryLog"]

#: Upper bounds (seconds) of the default latency ladder.  ``+inf`` is
#: implicit as a final catch-all bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: The percentiles every snapshot reports.
SNAPSHOT_PERCENTILES = (50.0, 95.0, 99.0)


class Histogram:
    """Thread-safe fixed-bucket histogram of seconds-valued observations."""

    def __init__(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or any(b <= 0 for b in bounds):
            raise ValueError(f"buckets must be positive, got {buckets!r}")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {buckets!r}")
        self.name = name
        self.bounds = bounds
        self._lock = threading.Lock()
        # counts[i] pairs with bounds[i]; counts[-1] is the +inf bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._min = math.inf

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation (negative values clamp to zero)."""
        value = max(0.0, float(value))
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value
            if value < self._min:
                self._min = value

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (0 with no observations).

        Linear interpolation within the bucket holding the target rank;
        the open-ended ``+inf`` bucket reports the observed maximum (the
        best finite statement the histogram can make).  Estimates are
        clamped to the observed ``[min, max]`` range, so a single sample
        (or any sparse bucket) reports a value that was actually seen —
        never a below-minimum interpolation artifact, never negative.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            maximum = self._max
            minimum = self._min
        if total == 0:
            return 0.0
        rank = q / 100.0 * total
        cumulative = 0
        for i, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count:
                if i == len(self.bounds):  # +inf bucket
                    return maximum
                low = self.bounds[i - 1] if i else 0.0
                high = self.bounds[i]
                fraction = (rank - previous) / count
                estimate = low + (high - low) * min(1.0, max(0.0, fraction))
                return min(max(estimate, minimum), maximum)
        return maximum

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-safe view: count/sum/min/max, p50/p95/p99, cumulative buckets."""
        percentiles = {
            f"p{p:g}": self.percentile(p) for p in SNAPSHOT_PERCENTILES
        }
        with self._lock:
            counts = list(self._counts)
            total = self._count
            observed_sum = self._sum
            maximum = self._max
            minimum = self._min
        buckets: list[dict[str, Any]] = []
        cumulative = 0
        for bound, count in zip(self.bounds, counts):
            cumulative += count
            buckets.append({"le": bound, "count": cumulative})
        buckets.append({"le": math.inf, "count": total})
        return {
            "name": self.name,
            "count": total,
            "sum": observed_sum,
            "min": 0.0 if total == 0 else minimum,
            "max": maximum,
            **percentiles,
            "buckets": buckets,
        }


class SlowQueryLog:
    """Bounded ring of the slowest recent requests (threshold-free).

    Every completed execution is offered; the log keeps the ``capacity``
    slowest seen since startup, ordered slowest-first in
    :meth:`snapshot`.  Entries are plain JSON-safe dicts — the scheduler
    records pattern/engine/tenant/duration and, for traced requests, the
    span tree, so the metrics surface can show *where* a slow query's
    time went, not just that it was slow.
    """

    def __init__(self, capacity: int = 16):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: list[dict[str, Any]] = []

    def record(self, entry: dict[str, Any]) -> None:
        """Offer one completed request (must carry ``duration`` seconds)."""
        duration = float(entry.get("duration", 0.0))
        with self._lock:
            if (
                len(self._entries) >= self.capacity
                and duration <= self._entries[-1].get("duration", 0.0)
            ):
                return  # faster than everything retained: not slow news
            self._entries.append(dict(entry))
            self._entries.sort(
                key=lambda e: e.get("duration", 0.0), reverse=True
            )
            del self._entries[self.capacity:]

    def snapshot(self) -> list[dict[str, Any]]:
        """Retained entries, slowest first."""
        with self._lock:
            return [dict(e) for e in self._entries]
