"""Structured event journal: the service's state-transition record.

Every fault and lifecycle path the service tier built — lost workers,
batch resubmits, quota rejections, cache evictions, disk-spill errors,
graph rebinds, watch drops — historically bumped a counter and vanished.
:class:`EventJournal` keeps the *record*: a bounded ring of leveled,
JSON-safe event dicts (``seq``, ``ts``, ``level``, ``component``,
``kind``, ``trace_id`` when a span is active, plus flat attributes), so
"what happened around 14:02" is one ``events`` protocol op instead of a
log-diving expedition.

Emission mirrors :mod:`logging`'s process-global model: components call
the module-level :func:`emit` against one shared default journal (no
constructor threading through coordinator/cache/streaming), and the
query server exposes it via the ``events`` op and ``repro events``.
Emitting is a lock, a dict build and a deque append — cheap enough for
fault paths, which are rare by construction.

An optional JSONL sink (:meth:`EventJournal.set_sink`) appends every
record as one JSON line, replayable with
:func:`repro.api.results.read_records_jsonl` (events come back as plain
dicts — they carry no ``record`` type tag).

Event ``kind`` strings are namespaced constants below; kinds that mirror
a ``RunResult``/service counter are pinned to the same source constants
by ``tests/test_counter_registry.py`` via :data:`MIRRORED_COUNTERS`.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, TextIO

from repro.obs.trace import current_span

__all__ = [
    "EventJournal",
    "KNOWN_KINDS",
    "LEVELS",
    "MIRRORED_COUNTERS",
    "emit",
    "journal",
]

#: Severity ladder, least to most severe (filters are "at least this").
LEVELS: tuple[str, ...] = ("debug", "info", "warning", "error")
_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}

# ---------------------------------------------------------------------------
# Event kinds.  Spelled as module constants so emitting sites and tests
# share one source of truth (the counter-registry discipline).
# ---------------------------------------------------------------------------
WORKER_LOST = "worker.lost"
WORKER_JOINED = "worker.joined"
WORKER_LEFT = "worker.left"
WORKER_STALE = "worker.stale"
BATCH_RESUBMIT = "batch.resubmit"
BATCH_RETRY = "batch.retry"
QUOTA_REJECTED = "quota.rejected"
ADMISSION_REJECTED = "admission.rejected"
ADMISSION_TIMEOUT = "admission.timeout"
CACHE_EVICTED = "cache.evicted"
CACHE_DISK_ERROR = "cache.disk_error"
GRAPH_REBIND = "graph.rebind"
WATCH_DROPPED = "watch.dropped"
HEALTH_RULE_FIRED = "health.rule_fired"
HEALTH_RULE_CLEARED = "health.rule_cleared"

#: Every kind the system emits (journal accepts unknown kinds — the set
#: exists so tests can assert emitting sites and registry stay in sync).
KNOWN_KINDS: frozenset[str] = frozenset({
    WORKER_LOST,
    WORKER_JOINED,
    WORKER_LEFT,
    WORKER_STALE,
    BATCH_RESUBMIT,
    BATCH_RETRY,
    QUOTA_REJECTED,
    ADMISSION_REJECTED,
    ADMISSION_TIMEOUT,
    CACHE_EVICTED,
    CACHE_DISK_ERROR,
    GRAPH_REBIND,
    WATCH_DROPPED,
    HEALTH_RULE_FIRED,
    HEALTH_RULE_CLEARED,
})

#: Event kinds that mirror a counter namespace -> the counter they
#: mirror.  Values are spelled literally (importing the owning modules
#: here would create cycles); tests/test_counter_registry.py pins each
#: one to the source constant.
MIRRORED_COUNTERS: dict[str, str] = {
    WORKER_LOST: "distributed.lost_workers",
    BATCH_RESUBMIT: "distributed.resubmits",
}

#: Default ring capacity — enough to hold hours of fault-path history
#: for a healthy service, bounded for one that is melting down.
DEFAULT_CAPACITY = 512


class EventJournal:
    """Thread-safe bounded ring of leveled, JSON-safe event records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._sink: TextIO | None = None
        self._sink_path: str | None = None

    # ------------------------------------------------------------------
    def emit(
        self,
        level: str,
        component: str,
        kind: str,
        *,
        trace_id: str | None = None,
        **attrs: Any,
    ) -> dict[str, Any]:
        """Record one event; returns the (JSON-safe) record.

        ``trace_id`` defaults to the innermost active span's trace id on
        the emitting thread, so events fired inside a traced request
        correlate with its span tree; pass it explicitly when the event
        fires on a helper thread outside the request's context (the
        coordinator's drive threads do, from the batch's wire context).
        Attribute values must be JSON-safe scalars; core keys win over
        same-named attributes.
        """
        if level not in _LEVEL_RANK:
            raise ValueError(
                f"unknown level {level!r}; choose from {LEVELS}"
            )
        if trace_id is None:
            active = current_span()
            if active is not None:
                trace_id = active.tracer.trace_id
        record: dict[str, Any] = {
            "ts": time.time(),
            "level": level,
            "component": component,
            "kind": kind,
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
        for key, value in attrs.items():
            record.setdefault(key, value)
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self._events.append(record)
            sink = self._sink
            if sink is not None:
                try:
                    sink.write(json.dumps(record, sort_keys=True) + "\n")
                    sink.flush()
                except (OSError, ValueError):
                    # A full disk or closed handle must never take the
                    # serving path down with it; drop the sink, keep
                    # the in-memory ring.
                    self._sink = None
        return record

    # ------------------------------------------------------------------
    def snapshot(
        self,
        *,
        level: str | None = None,
        component: str | None = None,
        since: int | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Retained events, oldest first, after the requested filters.

        ``level`` keeps events at least that severe; ``component``
        matches exactly; ``since`` keeps events with ``seq`` strictly
        greater (the ``--follow`` cursor); ``limit`` keeps the newest N
        of what survives.
        """
        if level is not None and level not in _LEVEL_RANK:
            raise ValueError(
                f"unknown level {level!r}; choose from {LEVELS}"
            )
        with self._lock:
            events = [dict(e) for e in self._events]
        if level is not None:
            floor = _LEVEL_RANK[level]
            events = [
                e for e in events if _LEVEL_RANK[e["level"]] >= floor
            ]
        if component is not None:
            events = [e for e in events if e["component"] == component]
        if since is not None:
            events = [e for e in events if e["seq"] > since]
        if limit is not None and limit >= 0:
            events = events[-limit:] if limit else []
        return events

    def last(
        self, kind: str, *, component: str | None = None
    ) -> dict[str, Any] | None:
        """The newest retained event of ``kind`` (None when absent)."""
        with self._lock:
            for record in reversed(self._events):
                if record["kind"] != kind:
                    continue
                if component is not None and (
                    record["component"] != component
                ):
                    continue
                return dict(record)
        return None

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest event ever emitted (0 = none)."""
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # ------------------------------------------------------------------
    def set_sink(self, path: str | None) -> None:
        """Append every future event to ``path`` as one JSON line.

        ``None`` closes the current sink.  The file is opened in append
        mode so restarts extend the history; replay it with
        :func:`repro.api.results.read_records_jsonl`.
        """
        with self._lock:
            if self._sink is not None:
                try:
                    self._sink.close()
                except OSError:
                    pass
                self._sink = None
                self._sink_path = None
            if path is not None:
                self._sink = open(path, "a", encoding="utf-8")
                self._sink_path = str(path)

    def clear(self) -> None:
        """Drop every retained event (the seq counter keeps advancing)."""
        with self._lock:
            self._events.clear()


#: The process-global default journal every component emits into.
_DEFAULT = EventJournal()


def journal() -> EventJournal:
    """The process-global default journal (the ``logging`` root analogue)."""
    return _DEFAULT


def emit(
    level: str,
    component: str,
    kind: str,
    *,
    trace_id: str | None = None,
    **attrs: Any,
) -> dict[str, Any]:
    """Emit one event into the default journal (see :meth:`EventJournal.emit`)."""
    return _DEFAULT.emit(
        level, component, kind, trace_id=trace_id, **attrs
    )
