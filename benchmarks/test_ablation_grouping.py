"""Ablation bench: proximity region grouping vs. naive random grouping.

Paper Sec. 6 (Fig. 6): random grouping "may put vertices that are
dissimilar to each other into the same group, potentially resulting in
more network communication cost", while proximity grouping maximises the
sharing of edge verifications and foreign-vertex fetches inside a group.

The foreign-vertex cache is throttled here: a generous cache also captures
*cross*-group sharing, which would mask the grouping signal this ablation
isolates.
"""

from conftest import run_once

from repro.bench.experiments import bench_graph
from repro.bench.harness import make_cluster
from repro.core.rads import RADSEngine
from repro.query import paper_query

QUERIES = ["q2", "q4", "q5"]
DATASETS = ["dblp", "livejournal"]
TINY_CACHE = 1e-9


def run_grid():
    rows = []
    for dataset in DATASETS:
        graph = bench_graph(dataset)
        base = make_cluster(graph, 10)
        for qname in QUERIES:
            pattern = paper_query(qname)
            row = {"dataset": dataset, "query": qname}
            counts = set()
            for label, strategy in (
                ("proximity", "proximity"), ("random", "random")
            ):
                engine = RADSEngine(
                    grouping=strategy, cache_budget_fraction=TINY_CACHE
                )
                result = engine.run(
                    base.fresh_copy(), pattern, collect_embeddings=False
                )
                assert not result.failed
                counts.add(result.embedding_count)
                row[label] = {
                    "time": result.makespan,
                    "comm": result.total_comm_bytes,
                }
            assert len(counts) == 1, "grouping changed the result set"
            rows.append(row)
    return rows


def format_rows(rows):
    lines = [
        "Ablation - region grouping strategy (cache throttled)",
        f"{'dataset/query':<20}{'proximity t/comm(KB)':>24}"
        f"{'random t/comm(KB)':>24}{'comm ratio':>12}",
    ]
    for row in rows:
        ratio = row["random"]["comm"] / max(1, row["proximity"]["comm"])
        lines.append(
            f"{row['dataset'] + '/' + row['query']:<20}"
            f"{row['proximity']['time']:>12.4f}/"
            f"{row['proximity']['comm'] / 1024:>9.1f}"
            f"{row['random']['time']:>14.4f}/"
            f"{row['random']['comm'] / 1024:>9.1f}"
            f"{ratio:>12.2f}"
        )
    return "\n".join(lines)


def test_ablation_grouping(benchmark, report):
    rows = run_once(benchmark, run_grid)
    report("ablation_grouping", format_rows(rows))

    # Proximity grouping never loses on traffic, and wins in aggregate.
    total_proximity = sum(r["proximity"]["comm"] for r in rows)
    total_random = sum(r["random"]["comm"] for r in rows)
    assert total_proximity < total_random
    for row in rows:
        assert row["proximity"]["comm"] <= 1.1 * row["random"]["comm"]
