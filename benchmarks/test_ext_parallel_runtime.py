"""Extension: parallel execution runtime — serial vs process backend.

Runs the RADS grid over RoadNet under the serial backend and under the
shared-memory process backend (4 workers), asserting that the two report
identical embedding counts, and reporting real wall-clock for both.
(Simulated stats differ slightly here because RADS's reactive work
stealing is schedule driven; the steal-free bit-parity guarantee is
covered by tests/test_runtime.py.)  The speedup assertion only applies
when the host actually has enough cores for the workers to run
concurrently — on a single-core CI box a process pool can only lose.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.bench.experiments import bench_graph
from repro.bench.harness import run_query_grid
from repro.core.rads import RADSEngine

QUERIES = ["q1", "q2", "q4", "q5"]
WORKERS = 4


def _available_cores() -> int:
    """Cores the pool can actually use: affinity capped by cgroup quota.

    A container started with a CPU quota (``--cpus=1``) can still expose
    an 8-wide affinity mask; asserting parallel speedup there would fail
    spuriously.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    for quota_file, read in (
        # cgroup v2: "<quota|max> <period>"
        ("/sys/fs/cgroup/cpu.max", lambda parts: (parts[0], parts[1])),
        # cgroup v1: quota in its own file (-1 = unlimited), period fixed
        ("/sys/fs/cgroup/cpu/cpu.cfs_quota_us", lambda parts: (parts[0], "100000")),
    ):
        try:
            with open(quota_file) as fh:
                quota, period = read(fh.read().split())
            if quota not in ("max", "-1"):
                cores = min(cores, max(1, int(quota) // int(period)))
            break
        except (OSError, ValueError, IndexError):
            continue
    return cores


def _grid(graph, workers: int):
    return run_query_grid(
        graph,
        "roadnet",
        QUERIES,
        engines={"RADS": RADSEngine()},
        num_machines=10,
        check_consistency=False,
        workers=workers,
    )


def test_ext_parallel_runtime(benchmark, report):
    graph = bench_graph("roadnet")

    def experiment():
        t0 = time.perf_counter()
        serial = _grid(graph, workers=0)
        t1 = time.perf_counter()
        parallel = _grid(graph, workers=WORKERS)
        t2 = time.perf_counter()
        return serial, parallel, t1 - t0, t2 - t1

    serial, parallel, serial_s, parallel_s = run_once(benchmark, experiment)

    # The backends must agree on every count (the correctness contract).
    for q in QUERIES:
        rs, rp = serial.get("RADS", q), parallel.get("RADS", q)
        assert rs is not None and rp is not None
        assert not rs.failed and not rp.failed, q
        assert rs.embedding_count == rp.embedding_count, q

    cores = _available_cores()
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    lines = [
        f"Parallel runtime — roadnet, RADS, {len(QUERIES)} queries "
        f"({cores} cores available)",
        f"  serial backend:            {serial_s:8.2f} s",
        f"  process backend (x{WORKERS}):      {parallel_s:8.2f} s",
        f"  wall-clock speedup:        {speedup:8.2f}x",
        "  embedding counts:          identical",
    ]
    report("ext_parallel_runtime", "\n".join(lines))

    if cores >= WORKERS:
        # With real cores behind the pool the phase-2 fan-out must pay off.
        assert speedup >= 1.5, (
            f"process backend speedup {speedup:.2f}x < 1.5x "
            f"on a {cores}-core host"
        )
