"""Fig. 10: performance over LiveJournal (time + communication, q1-q8).

Paper shape: join engines and PSgL become impractical on the dense
social graph; Crystal is competitive on the triangle queries (q2, q4, q5)
thanks to the clique index; RADS wins the triangle-free queries.
"""

from conftest import run_once

from repro.bench.experiments import exp_performance
from repro.bench.harness import format_comm_table, format_time_table


def test_fig10_livejournal(benchmark, report):
    grid = run_once(benchmark, lambda: exp_performance("livejournal"))
    report(
        "fig10_livejournal",
        format_time_table(grid) + "\n\n" + format_comm_table(grid),
    )

    def ok(engine, q):
        r = grid.get(engine, q)
        return r is not None and not r.failed

    # RADS finishes everything under the cap.
    assert all(ok("RADS", q) for q in grid.queries())

    def common_total(engine):
        """Totals restricted to queries both RADS and `engine` finished."""
        queries = [q for q in grid.queries() if ok(engine, q)]
        ours = sum(grid.get("RADS", q).makespan for q in queries)
        theirs = sum(grid.get(engine, q).makespan for q in queries)
        return ours, theirs

    # On every query a baseline manages to finish, RADS wins in aggregate
    # ("SEED, TwinTwig and PSgL start becoming impractical", Exp-3); the
    # heavier queries push the join engines past the memory cap entirely.
    for engine in ("TwinTwig", "SEED", "PSgL"):
        ours, theirs = common_total(engine)
        assert ours < theirs, engine
    heavy = ["q5", "q6", "q7"]
    assert any(
        not ok(e, q) for e in ("TwinTwig", "SEED") for q in heavy
    )
    # Triangle-free queries: RADS beats Crystal (no index shortcut there).
    tri_free = [q for q in ("q6", "q7", "q8") if ok("Crystal", q)]
    assert sum(grid.get("RADS", q).makespan for q in tri_free) < sum(
        grid.get("Crystal", q).makespan for q in tri_free
    )
    # End-vertex sensitivity (Exp-3): RADS' q4->q5 slowdown stays mild
    # (the paper: "their processing time increased slightly from q4").
    rads_ratio = grid.get("RADS", "q5").makespan / max(
        grid.get("RADS", "q4").makespan, 1e-9
    )
    if ok("PSgL", "q5"):
        psgl_ratio = grid.get("PSgL", "q5").makespan / max(
            grid.get("PSgL", "q4").makespan, 1e-9
        )
        assert rads_ratio < psgl_ratio * 1.5
