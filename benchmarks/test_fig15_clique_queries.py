"""Fig. 15: clique-bearing queries cq1-cq4 for SEED, Crystal and RADS.

Paper shape: RADS beats SEED everywhere; Crystal's clique index makes it
competitive (often ahead) on the dense datasets' clique queries, while RADS
stays ahead on RoadNet (few cliques to index) and on queries where
verification edges prune hard.
"""

from conftest import run_once

from repro.bench.experiments import exp_clique_queries
from repro.bench.harness import format_time_table


def _total(grid, engine):
    vals = [
        grid.get(engine, q).makespan
        for q in grid.queries()
        if grid.get(engine, q) and not grid.get(engine, q).failed
    ]
    return sum(vals) if vals else float("inf")


def test_fig15_roadnet(benchmark, report):
    grid = run_once(benchmark, lambda: exp_clique_queries("roadnet"))
    report("fig15_clique_roadnet", format_time_table(grid))
    # "RADS performs constantly faster than SEED and Crystal on Roadnet".
    assert _total(grid, "RADS") < _total(grid, "SEED")
    assert _total(grid, "RADS") < _total(grid, "Crystal")


def test_fig15_livejournal(benchmark, report):
    grid = run_once(benchmark, lambda: exp_clique_queries("livejournal"))
    report("fig15_clique_livejournal", format_time_table(grid))
    # Documented deviation (see EXPERIMENTS.md): at this reduced scale
    # SEED's clique units list each data clique once with no join round,
    # which can beat RADS's re-expansion on pure-clique queries; on the
    # paper's full-size graphs SEED's shuffle volume buries that.  The
    # robust checks: everyone agrees, RADS never OOMs, and RADS stays
    # ahead of SEED whenever a join round is actually involved (cq4's
    # two-clique join).
    assert not any(grid.get("RADS", q).failed for q in grid.queries())
    seed_cq4 = grid.get("SEED", "cq4")
    if not seed_cq4.failed:
        assert (
            grid.get("RADS", "cq4").total_comm_bytes
            < seed_cq4.total_comm_bytes
        )


def test_fig15_dblp(benchmark, report):
    grid = run_once(benchmark, lambda: exp_clique_queries("dblp"))
    report("fig15_clique_dblp", format_time_table(grid))
    # RADS must ship far less data than the join-based SEED on DBLP
    # (the time comparison at this scale is documented in EXPERIMENTS.md).
    rads_comm = sum(
        grid.get("RADS", q).total_comm_bytes for q in grid.queries()
        if not grid.get("RADS", q).failed
    )
    seed_comm = sum(
        grid.get("SEED", q).total_comm_bytes for q in grid.queries()
        if not grid.get("SEED", q).failed
    )
    assert rads_comm < seed_comm
