"""Extension benchmark: process backend vs socket shard backend.

Runs the same query mix through the process-pool backend and through the
socket backend at 1, 2 and 4 local shard workers, reporting queries/sec
for each configuration.  On one host the socket backend pays the wire
tax (pickle + TCP per task batch) for the deployment property the
process pool cannot offer — shards on *other* machines — so the point of
the table is the size of that tax and how it amortises with shard count,
not a speedup assertion.  Counts must agree everywhere (the correctness
contract of every backend).
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.api import default_registry
from repro.bench.experiments import bench_graph
from repro.cluster import Cluster
from repro.distributed import ShardWorker, SocketExecutor
from repro.query import named_patterns
from repro.runtime import ProcessExecutor

QUERIES = ("q1", "q2", "q3")
#: Requests per configuration (each query run round-robin).
REQUESTS = 12
SHARD_COUNTS = (1, 2, 4)
PROCESS_WORKERS = 4


def _drive(cluster, executor) -> tuple[float, tuple[int, ...]]:
    """Run the request mix on one backend; (elapsed s, counts)."""
    engine = default_registry().create("rads", graph=cluster.graph)
    patterns = [named_patterns()[name] for name in QUERIES]
    counts = []
    start = time.perf_counter()
    for i in range(REQUESTS):
        result = engine.run(
            cluster.fresh_copy(),
            patterns[i % len(patterns)],
            collect_embeddings=False,
            executor=executor,
        )
        assert not result.failed
        counts.append(result.embedding_count)
    elapsed = time.perf_counter() - start
    return elapsed, tuple(counts[: len(QUERIES)])


def test_ext_distributed_backends(benchmark, report):
    graph = bench_graph("roadnet")
    cluster = Cluster.create(graph, 8)

    def experiment():
        rows = []
        with ProcessExecutor(PROCESS_WORKERS) as executor:
            elapsed, counts = _drive(cluster, executor)
            rows.append((f"process x{PROCESS_WORKERS}", elapsed, counts))
        for shard_count in SHARD_COUNTS:
            workers = [ShardWorker().start() for _ in range(shard_count)]
            try:
                with SocketExecutor(
                    [w.address for w in workers],
                    heartbeat_interval=None,
                ) as executor:
                    elapsed, counts = _drive(cluster, executor)
                rows.append((f"socket x{shard_count}", elapsed, counts))
            finally:
                for worker in workers:
                    worker.close()
        return rows

    rows = run_once(benchmark, experiment)

    # Every backend must agree on every query's count.
    reference = rows[0][2]
    for label, _elapsed, counts in rows:
        assert counts == reference, (label, counts, reference)

    lines = [
        f"Distributed shard backend — roadnet, RADS, {REQUESTS} requests "
        f"over {', '.join(QUERIES)} (8 simulated machines)",
    ]
    for label, elapsed, _counts in rows:
        qps = REQUESTS / elapsed if elapsed else float("inf")
        lines.append(f"  {label:<12} {elapsed:8.2f} s   {qps:6.2f} q/s")
    lines.append("  embedding counts:          identical across backends")
    report("ext_distributed", "\n".join(lines))
