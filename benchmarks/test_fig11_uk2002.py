"""Fig. 11: time over UK2002 — the memory-pressure dataset.

Paper shape: TwinTwig, SEED and PSgL fail queries beyond q3 with
out-of-memory errors (empty bars); RADS finishes everything; Crystal is
competitive only where the clique index helps.
"""

from conftest import run_once

from repro.bench.experiments import exp_performance
from repro.bench.harness import format_comm_table, format_time_table


def test_fig11_uk2002(benchmark, report):
    grid = run_once(benchmark, lambda: exp_performance("uk2002"))
    report(
        "fig11_uk2002",
        format_time_table(grid) + "\n\n" + format_comm_table(grid),
    )

    def failed(engine, q):
        r = grid.get(engine, q)
        return r is not None and r.failed

    # RADS finishes every query under the memory cap.
    assert not any(failed("RADS", q) for q in grid.queries())
    # The join baselines OOM on several heavier queries; PSgL — which
    # verifies before storing — holds out longer but still fails some
    # (the paper's empty bars after q3).
    heavy = ["q4", "q5", "q6", "q7", "q8"]
    for engine, min_oom in (("TwinTwig", 2), ("SEED", 2), ("PSgL", 1)):
        oom = sum(1 for q in heavy if failed(engine, q))
        assert oom >= min_oom, f"{engine} only OOMed {oom} heavy queries"
    # Communication: RADS is at least 10x cheaper than any baseline that
    # moved data (paper: "more than 2 orders of magnitude" on real scale).
    def comm(engine):
        vals = [
            grid.get(engine, q).total_comm_bytes
            for q in grid.queries()
            if grid.get(engine, q) is not None
        ]
        return sum(vals)

    assert comm("RADS") * 10 < max(comm("PSgL"), comm("TwinTwig"))
