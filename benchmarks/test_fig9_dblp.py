"""Fig. 9: performance over DBLP (time + communication, q1-q8).

Paper shape: PSgL's uncompressed partial-match shuffling makes it the
communication hog; RADS' foreign-vertex caching keeps its traffic tiny;
RADS leads on time.
"""

from conftest import run_once

from repro.bench.experiments import exp_performance
from repro.bench.harness import format_comm_table, format_time_table


def test_fig9_dblp(benchmark, report):
    grid = run_once(benchmark, lambda: exp_performance("dblp"))
    report(
        "fig9_dblp",
        format_time_table(grid) + "\n\n" + format_comm_table(grid),
    )

    def total(engine, metric):
        vals = [
            metric(grid.get(engine, q))
            for q in grid.queries()
            if grid.get(engine, q) and not grid.get(engine, q).failed
        ]
        return sum(vals) if vals else float("inf")

    comm_of = lambda e: total(e, lambda r: r.total_comm_bytes)
    time_of = lambda e: total(e, lambda r: r.makespan)

    # Every baseline ships at least an order of magnitude more data than
    # RADS, whose foreign-vertex caching keeps traffic "quite small
    # (less than 5M)" in the paper.
    for engine in ("PSgL", "TwinTwig", "SEED", "Crystal"):
        assert comm_of(engine) > 10 * comm_of("RADS"), engine
    # RADS communicates the least among the distributed engines.
    assert comm_of("RADS") == min(
        comm_of(e) for e in ("PSgL", "RADS", "TwinTwig", "SEED")
    )
    # Time ordering of Exp-2: RADS first; PSgL beats the join engines.
    assert time_of("RADS") == min(
        time_of(e) for e in ("PSgL", "RADS", "TwinTwig", "SEED", "Crystal")
    )
    assert time_of("PSgL") < time_of("TwinTwig")
    assert time_of("PSgL") < time_of("SEED")
