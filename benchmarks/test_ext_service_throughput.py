"""Extension benchmark: query-service throughput with and without the cache.

Drives the :class:`repro.service.QueryScheduler` with a realistic serving
mix — a small set of distinct queries, each requested many times (the
skew that makes result caching worth building) — and reports queries/sec
for three configurations:

- ``no-cache``: every request pays full enumeration,
- ``cache``: repeats and isomorphic rewrites are served from the
  canonical-pattern :class:`~repro.service.ResultCache`,
- ``cache+iso``: the same workload where every repeat is an isomorphic
  *rewrite* of the original spelling (exercising the remap path).

The absolute numbers are simulation-host-dependent; the point of the
table is the cache speedup factor and the hit counters.
"""

from __future__ import annotations

import random
import time

from conftest import run_once

import repro
from repro.api import RunConfig
from repro.graph import powerlaw_cluster
from repro.service import QueryScheduler

#: Distinct queries in the mix (names from the paper catalogue).
QUERIES = ("triangle", "q1", "q2", "q3")
#: Total requests (each query repeated REQUESTS / len(QUERIES) times).
REQUESTS = 48
THREADS = 4


def _rewrite(pattern, seed):
    perm = list(range(pattern.num_vertices))
    random.Random(seed).shuffle(perm)
    return pattern.relabel(dict(enumerate(perm))).copy_with_name(
        f"{pattern.name}~{seed}"
    )


def _workload(isomorphic_rewrites: bool):
    """REQUESTS patterns: each catalogue query repeated round-robin."""
    patterns = [repro.resolve_query(name) for name in QUERIES]
    requests = []
    for i in range(REQUESTS):
        pattern = patterns[i % len(patterns)]
        if isomorphic_rewrites and i >= len(patterns):
            pattern = _rewrite(pattern, seed=i)
        requests.append(pattern)
    return requests


def _drive(
    graph, *, cache, isomorphic_rewrites=False, trace=False, profile=False
):
    config = RunConfig(machines=4)
    requests = _workload(isomorphic_rewrites)
    with QueryScheduler(
        graph, config, threads=THREADS, cache=cache
    ) as scheduler:
        start = time.perf_counter()
        # First wave: the distinct queries, run to completion — so the
        # burst of repeats below actually exercises the cache instead of
        # deduplicating onto still-in-flight executions.
        warm = [
            scheduler.submit(pattern, "rads", trace=trace, profile=profile)
            for pattern in requests[: len(QUERIES)]
        ]
        results = [ticket.result(600) for ticket in warm]
        tickets = [
            scheduler.submit(pattern, "rads", trace=trace, profile=profile)
            for pattern in requests[len(QUERIES):]
        ]
        results += [ticket.result(600) for ticket in tickets]
        elapsed = time.perf_counter() - start
        stats = scheduler.stats()
    assert len({r.embedding_count for r in results}) == len(QUERIES)
    return elapsed, stats


def test_service_throughput(benchmark, report):
    graph = powerlaw_cluster(400, edges_per_vertex=4, seed=11)

    def experiment():
        rows = []
        for label, cache, iso in (
            ("no-cache", False, False),
            ("cache", None, False),
            ("cache+iso", None, True),
        ):
            elapsed, stats = _drive(
                graph, cache=cache, isomorphic_rewrites=iso
            )
            cache_stats = stats["cache"] or {"hits": 0, "misses": REQUESTS}
            rows.append((
                label,
                REQUESTS / elapsed,
                elapsed,
                cache_stats["hits"],
                cache_stats["misses"],
                stats["deduped"],
            ))
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Service throughput — powerlaw |V|=400, 4 machines, "
        f"{THREADS} threads, {REQUESTS} requests over {len(QUERIES)} "
        "distinct queries",
        f"{'config':>10} {'q/s':>10} {'elapsed':>9} {'hits':>6} "
        f"{'misses':>7} {'dedup':>6}",
    ]
    for label, qps, elapsed, hits, misses, deduped in rows:
        lines.append(
            f"{label:>10} {qps:>10.1f} {elapsed:>8.2f}s {hits:>6} "
            f"{misses:>7} {deduped:>6}"
        )
    baseline = rows[0][1]
    for label, qps, *_ in rows[1:]:
        lines.append(f"{label} speedup over no-cache: {qps / baseline:.1f}x")
    report("ext_service_throughput", "\n".join(lines))

    # The cache must actually absorb the repeats...
    assert rows[1][3] >= REQUESTS - len(QUERIES) - rows[1][5]
    # ...and a served workload with repeats must not be slower than
    # re-enumerating everything (generous bound: simulation noise).
    assert rows[1][1] >= rows[0][1]


# ----------------------------------------------------------------------
# Multi-tenant open-loop load on the elastic socket backend
# ----------------------------------------------------------------------
#: Open-loop requests fired without waiting (tenants alternate).
OPEN_LOOP_REQUESTS = 24
OPEN_LOOP_TENANTS = ("gold", "bronze")


def test_ext_multitenant_elastic_throughput(benchmark, report):
    """Open-loop multi-tenant load with a shard worker killed mid-run.

    Two announced shard workers serve a weighted pair of tenants; every
    request is submitted up front (open loop), one worker is crashed once
    a third of the responses are in, and the remaining work rides the
    fault-tolerance path (lost worker, task resubmission) on the
    surviving shard.  The table reports per-tenant completions and the
    fault counters — the acceptance bar is that every request completes
    and the kill is visible in the counters, not silent.
    """
    from repro.distributed import ShardRegistry, ShardWorker
    from repro.service import TenantQuota

    graph = powerlaw_cluster(300, edges_per_vertex=4, seed=11)

    def experiment():
        registry = ShardRegistry()
        workers = [ShardWorker().start(), ShardWorker().start()]
        for worker in workers:
            registry.announce(worker.address)
        config = RunConfig(machines=4, backend="socket")
        try:
            with QueryScheduler(
                graph,
                config,
                threads=THREADS,
                cache=False,
                shard_registry=registry,
                tenants={
                    "gold": TenantQuota(weight=2.0),
                    "bronze": TenantQuota(weight=1.0),
                },
            ) as scheduler:
                start = time.perf_counter()
                tickets = [
                    scheduler.submit(
                        QUERIES[i % len(QUERIES)],
                        "rads",
                        tenant=OPEN_LOOP_TENANTS[
                            i % len(OPEN_LOOP_TENANTS)
                        ],
                    )
                    for i in range(OPEN_LOOP_REQUESTS)
                ]
                deadline = time.monotonic() + 600
                while (
                    scheduler.stats()["completed"]
                    < OPEN_LOOP_REQUESTS // 3
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                workers[1].crash()  # mid-run, no withdraw: a dead host
                results = [ticket.result(600) for ticket in tickets]
                elapsed = time.perf_counter() - start
                stats = scheduler.stats()
            lost = sum(
                r.counters.get("distributed.lost_workers", 0)
                for r in results
            )
            resubmits = sum(
                r.counters.get("distributed.resubmits", 0)
                for r in results
            )
            return elapsed, stats, lost, resubmits
        finally:
            for worker in workers:
                worker.close()

    elapsed, stats, lost, resubmits = run_once(benchmark, experiment)

    tenants = stats["tenants"]
    lines = [
        "Multi-tenant elastic service — powerlaw |V|=300, 4 machines, "
        f"{THREADS} threads, {OPEN_LOOP_REQUESTS} open-loop requests, "
        "2 shard workers (one killed mid-run)",
        f"{'tenant':>8} {'weight':>7} {'submitted':>10} {'completed':>10} "
        f"{'deduped':>8}",
    ]
    for name in OPEN_LOOP_TENANTS:
        row = tenants[name]
        lines.append(
            f"{name:>8} {row['weight']:>7.1f} {row['submitted']:>10} "
            f"{row['completed']:>10} {row['deduped']:>8}"
        )
    lines.append(
        f"throughput: {OPEN_LOOP_REQUESTS / elapsed:.1f} q/s "
        f"({elapsed:.2f}s); lost workers: {lost}, task resubmits: "
        f"{resubmits}"
    )
    report("ext_service_multitenant", "\n".join(lines))

    # Every request survives the mid-run kill...
    assert stats["completed"] == OPEN_LOOP_REQUESTS
    assert stats["failed"] == 0
    per_tenant = OPEN_LOOP_REQUESTS // len(OPEN_LOOP_TENANTS)
    for name in OPEN_LOOP_TENANTS:
        assert tenants[name]["submitted"] == per_tenant
        assert (
            tenants[name]["completed"] + tenants[name]["deduped"]
            >= per_tenant
        )
    # ...and the kill is visible on the fault counters, not silent.
    assert lost >= 1


# ----------------------------------------------------------------------
# Tracing overhead guard (PR 9)
# ----------------------------------------------------------------------
#: Iterations for the disabled-instrumentation microprobes.
TRACE_PROBE_ITERS = 50_000


def test_ext_tracing_overhead(benchmark, report):
    """Disabled tracing must cost nothing the serving path can feel.

    The guard against instrumentation creep: (a) the no-op ``span()``
    context (one ContextVar read) and a ``Histogram.observe`` stay in
    single-digit microseconds, (b) their combined per-request cost is
    deep inside the noise of the untraced serving drive — i.e. the
    PR 8 baseline throughput is preserved — and (c) a fully traced
    drive still produces the same enumeration counts (spans observe,
    never perturb).
    """
    from repro.obs.hist import Histogram
    from repro.obs.trace import span

    graph = powerlaw_cluster(400, edges_per_vertex=4, seed=11)

    def experiment():
        start = time.perf_counter()
        for _ in range(TRACE_PROBE_ITERS):
            with span("probe"):
                pass
        span_cost = (time.perf_counter() - start) / TRACE_PROBE_ITERS
        hist = Histogram("probe")
        start = time.perf_counter()
        for _ in range(TRACE_PROBE_ITERS):
            hist.observe(0.001)
        observe_cost = (time.perf_counter() - start) / TRACE_PROBE_ITERS
        elapsed_off, _ = _drive(graph, cache=False)
        elapsed_on, _ = _drive(graph, cache=False, trace=True)
        return span_cost, observe_cost, elapsed_off, elapsed_on

    span_cost, observe_cost, elapsed_off, elapsed_on = run_once(
        benchmark, experiment
    )

    # The scheduler touches at most one disabled root span and a
    # handful of histogram observations per request.
    per_request = span_cost + 3 * observe_cost
    baseline_per_request = elapsed_off / REQUESTS
    lines = [
        "Tracing overhead — powerlaw |V|=400, 4 machines, "
        f"{THREADS} threads, {REQUESTS} requests (cache off)",
        f"no-op span():        {span_cost * 1e6:8.3f} us/call",
        f"Histogram.observe(): {observe_cost * 1e6:8.3f} us/call",
        f"disabled overhead:   {per_request * 1e6:8.3f} us/request "
        f"({100 * per_request / baseline_per_request:.4f}% of the "
        f"{baseline_per_request * 1e3:.1f}ms baseline request)",
        f"untraced drive: {elapsed_off:6.2f}s "
        f"({REQUESTS / elapsed_off:.1f} q/s)",
        f"traced drive:   {elapsed_on:6.2f}s "
        f"({REQUESTS / elapsed_on:.1f} q/s, "
        f"{elapsed_on / elapsed_off:.2f}x)",
    ]
    report("ext_tracing_overhead", "\n".join(lines))

    # (a) the disabled primitives stay cheap in absolute terms...
    assert span_cost < 10e-6
    assert observe_cost < 10e-6
    # (b) ...so the untraced serving path is within noise of the
    # pre-observability baseline: the added fixed cost per request is
    # a vanishing fraction of what a request already costs.
    assert per_request < 0.01 * baseline_per_request
    # (c) and even full tracing stays a bounded, modest tax.
    assert elapsed_on < elapsed_off * 1.5 + 1.0


# ----------------------------------------------------------------------
# Profiling overhead guard (PR 10)
# ----------------------------------------------------------------------
def test_ext_profiling_overhead(benchmark, report):
    """Disabled profiling must be invisible; enabled must not perturb.

    The disabled path is one ContextVar read (``profile_active()``) per
    execution — the guard holds it under 0.01% of what a request already
    costs.  A fully profiled drive must produce the same enumeration
    counts, and a profiled/unprofiled pair of the same query must be
    bit-identical on every engine stat: profiles observe, never perturb.
    """
    from repro.obs.profile import profile_active

    graph = powerlaw_cluster(400, edges_per_vertex=4, seed=11)

    def _stats(result):
        return (
            result.failed,
            result.embedding_count,
            result.makespan,
            result.total_comm_bytes,
            result.peak_memory,
            tuple(result.per_machine_time),
            {
                name: value
                for name, value in result.counters.items()
                if not name.startswith("service.")
            },
        )

    def experiment():
        start = time.perf_counter()
        for _ in range(TRACE_PROBE_ITERS):
            profile_active()
        probe_cost = (time.perf_counter() - start) / TRACE_PROBE_ITERS
        elapsed_off, _ = _drive(graph, cache=False)
        elapsed_on, _ = _drive(graph, cache=False, profile=True)
        # Bit-parity: same scheduler, same query, profiled and not.
        with QueryScheduler(
            graph, RunConfig(machines=4), threads=1, cache=False
        ) as scheduler:
            plain = scheduler.submit("q2", "rads").result(600)
            profiled = scheduler.submit(
                "q2", "rads", profile=True
            ).result(600)
        assert plain.profile is None
        assert profiled.profile is not None
        assert profiled.profile["wall_seconds"] > 0
        identical = _stats(plain) == _stats(profiled)
        return probe_cost, elapsed_off, elapsed_on, identical

    probe_cost, elapsed_off, elapsed_on, identical = run_once(
        benchmark, experiment
    )

    baseline_per_request = elapsed_off / REQUESTS
    lines = [
        "Profiling overhead — powerlaw |V|=400, 4 machines, "
        f"{THREADS} threads, {REQUESTS} requests (cache off)",
        f"disabled probe (profile_active): {probe_cost * 1e9:8.1f} ns/call "
        f"({100 * probe_cost / baseline_per_request:.6f}% of the "
        f"{baseline_per_request * 1e3:.1f}ms baseline request)",
        f"unprofiled drive: {elapsed_off:6.2f}s "
        f"({REQUESTS / elapsed_off:.1f} q/s)",
        f"profiled drive:   {elapsed_on:6.2f}s "
        f"({REQUESTS / elapsed_on:.1f} q/s, "
        f"{elapsed_on / elapsed_off:.2f}x)",
        f"profiled stats bit-identical: {identical}",
    ]
    report("ext_profiling_overhead", "\n".join(lines))

    # The disabled path — one ContextVar read — is lost in the noise of
    # a request: under 0.01% of the baseline per-request cost.
    assert probe_cost < 0.0001 * baseline_per_request
    # Profiles observe, never perturb.
    assert identical
    # Enabled profiling is a deliberate opt-in cost — tracemalloc hooks
    # every allocation in the process — so the bound here only catches
    # runaway regressions, not the instrument's own (large) price.
    assert elapsed_on < elapsed_off * 15.0 + 5.0
