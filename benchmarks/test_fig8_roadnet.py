"""Fig. 8: performance over RoadNet (time + communication, q1-q8).

Paper shape: RADS and PSgL (exploration-based) beat the join-based engines
by an order of magnitude on this sparse graph, and RADS' communication is
near zero because SM-E absorbs almost all candidates.
"""

from conftest import run_once

from repro.bench.experiments import exp_performance
from repro.bench.harness import format_comm_table, format_time_table


def test_fig8_roadnet(benchmark, report):
    grid = run_once(benchmark, lambda: exp_performance("roadnet"))
    report(
        "fig8_roadnet",
        format_time_table(grid) + "\n\n" + format_comm_table(grid),
    )

    def total(engine, metric):
        vals = [
            metric(grid.get(engine, q))
            for q in grid.queries()
            if grid.get(engine, q) and not grid.get(engine, q).failed
        ]
        return sum(vals) if vals else float("inf")

    time_of = lambda e: total(e, lambda r: r.makespan)
    comm_of = lambda e: total(e, lambda r: r.total_comm_bytes)

    # Exploration engines dominate the join engines on sparse graphs.
    assert time_of("RADS") < time_of("TwinTwig")
    assert time_of("RADS") < time_of("SEED")
    assert time_of("PSgL") < time_of("TwinTwig")
    # "for RADS, the communication cost is almost 0" (Exp-1): an order of
    # magnitude under the join engines, well under the other explorer too.
    assert comm_of("RADS") < 0.2 * comm_of("PSgL")
    assert comm_of("RADS") < 0.05 * comm_of("TwinTwig")
    assert comm_of("RADS") < 2_000_000  # well under 2 MB in simulation
