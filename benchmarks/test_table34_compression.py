"""Tables 3-4: embedding-list (EL) vs embedding-trie (ET) space cost.

Paper shape: the trie always compresses, and the ratio is better on DBLP
than on RoadNet ("the embeddings of RoadNet are very diverse and they do
not share a lot of common vertices").
"""

from conftest import run_once

from repro.bench.experiments import exp_compression


def format_rows(name, rows):
    lines = [
        f"Tables 3/4 - intermediate-result compression over {name}",
        f"{'query':<8}{'embeddings':>12}{'EL KB':>10}{'ET KB':>10}"
        f"{'EL/ET':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r['query']:<8}{r['embeddings']:>12}{r['el_kb']:>10}"
            f"{r['et_kb']:>10}{r['ratio']:>8}"
        )
    return "\n".join(lines)


def _mean_ratio(rows):
    ratios = [r["ratio"] for r in rows if r["embeddings"] > 0]
    return sum(ratios) / len(ratios) if ratios else 0.0


def test_table3_compression_roadnet(benchmark, report):
    rows = run_once(benchmark, lambda: exp_compression("roadnet"))
    report("table3_compression_roadnet", format_rows("roadnet", rows))
    # The paper's takeaway for Table 3 is *relative*: "the compression
    # ratios of all queries over RoadNet are smaller than that over DBLP"
    # because RoadNet's embeddings are diverse.  At this reduced scale the
    # sharing on RoadNet can even go below break-even; the cross-dataset
    # ordering is asserted in the DBLP test.  Here we check the trie never
    # exceeds the worst case (one node per position plus root sharing).
    for r in rows:
        if r["embeddings"] > 0:
            assert r["et_kb"] <= r["el_kb"] * 3.0 + 1


def test_table4_compression_dblp(benchmark, report):
    rows = run_once(benchmark, lambda: exp_compression("dblp"))
    report("table4_compression_dblp", format_rows("dblp", rows))
    total_el = sum(r["el_kb"] for r in rows)
    total_et = sum(r["et_kb"] for r in rows)
    assert total_et < total_el
    # Dense result sets (the paper's regime) compress decisively.
    for r in rows:
        if r["embeddings"] > 10_000:
            assert r["ratio"] > 1.0, r
    # DBLP compresses better than RoadNet ("the embeddings of Roadnet are
    # very diverse and they do not share a lot of common vertices").
    road = exp_compression("roadnet")
    assert _mean_ratio(rows) > _mean_ratio(road)
