"""Shared benchmark fixtures and table-reporting helpers.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round): the experiments are deterministic simulations, so statistical
repetition would only burn time.  Every benchmark also appends its
paper-style table to ``benchmarks/out/`` so the results survive the run —
set ``REPRO_BENCH_OUT=0`` to print without touching the working tree
(CI does this).

Everything collected from this directory is marked ``bench``, which the
tier-1 pytest configuration (pyproject.toml) deselects by default; run
``python -m pytest benchmarks -m bench`` to execute the suite.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"
_HERE = pathlib.Path(__file__).parent.resolve()


def _persist_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_OUT", "1") not in ("0", "false", "no")


def pytest_collection_modifyitems(config, items):
    """Auto-apply the ``bench`` marker to every test in benchmarks/."""
    for item in items:
        if _HERE in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def report():
    """Callable that prints a table and persists it under benchmarks/out/."""
    persist = _persist_enabled()
    if persist:
        OUT_DIR.mkdir(parents=True, exist_ok=True)

    def _report(name: str, text: str) -> None:
        print(f"\n{text}\n")
        if persist:
            with open(OUT_DIR / f"{name}.txt", "w", encoding="utf-8") as fh:
                fh.write(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
