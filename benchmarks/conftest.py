"""Shared benchmark fixtures and table-reporting helpers.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round): the experiments are deterministic simulations, so statistical
repetition would only burn time.  Every benchmark also appends its
paper-style table to ``benchmarks/out/`` so the results survive the run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report():
    """Callable that prints a table and persists it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        print(f"\n{text}\n")
        with open(OUT_DIR / f"{name}.txt", "w", encoding="utf-8") as fh:
            fh.write(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
