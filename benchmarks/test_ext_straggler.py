"""Extension bench: straggler tolerance (the asynchrony argument).

The paper's Sec. 1 motivates RADS with: synchronous systems "suffer from
synchronization delay [...] making the overall performance equivalent to
that of the slowest machine".  This bench slows one of ten machines by
1x/2x/4x/8x and tracks each engine's makespan.
"""

from conftest import run_once

from repro.bench.experiments import bench_graph
from repro.bench.harness import make_cluster
from repro.core.rads import RADSEngine
from repro.engines import PSgLEngine, SEEDEngine, TwinTwigEngine
from repro.query import paper_query

SLOWDOWNS = [1.0, 2.0, 4.0, 8.0]
QUERY = "q4"
DATASET = "dblp"


def run_sweep():
    graph = bench_graph(DATASET)
    base = make_cluster(graph, 10)
    engines = {
        "RADS": RADSEngine,
        "PSgL": PSgLEngine,
        "TwinTwig": TwinTwigEngine,
        "SEED": SEEDEngine,
    }
    pattern = paper_query(QUERY)
    table: dict[str, dict[float, float]] = {name: {} for name in engines}
    for name, engine_cls in engines.items():
        for slowdown in SLOWDOWNS:
            cluster = base.fresh_copy()
            cluster.set_speed_factor(0, 1.0 / slowdown)
            result = engine_cls().run(
                cluster, pattern, collect_embeddings=False
            )
            assert not result.failed
            table[name][slowdown] = result.makespan
    return table


def format_table(table):
    lines = [
        f"Extension - straggler sweep ({DATASET}, {QUERY}, machine 0 slowed)",
        f"{'engine':<12}" + "".join(f"{s:>12.0f}x" for s in SLOWDOWNS)
        + f"{'penalty(8x)':>16}",
    ]
    for name, row in table.items():
        penalty = row[8.0] - row[1.0]
        lines.append(
            f"{name:<12}"
            + "".join(f"{row[s]:>13.4f}" for s in SLOWDOWNS)
            + f"{penalty:>16.4f}"
        )
    return "\n".join(lines)


def test_ext_straggler(benchmark, report):
    table = run_once(benchmark, run_sweep)
    report("ext_straggler", format_table(table))

    # RADS stays fastest at every slowdown level...
    for slowdown in SLOWDOWNS:
        for other in ("PSgL", "TwinTwig", "SEED"):
            assert table["RADS"][slowdown] < table[other][slowdown]
    # ...and pays the smallest absolute penalty for the 8x straggler.
    penalties = {
        name: row[8.0] - row[1.0] for name, row in table.items()
    }
    for other in ("PSgL", "TwinTwig", "SEED"):
        assert penalties["RADS"] <= penalties[other]
    # Makespans are monotone in the slowdown for every engine.
    for row in table.values():
        makespans = [row[s] for s in SLOWDOWNS]
        assert all(a <= b * 1.001 for a, b in zip(makespans, makespans[1:]))
