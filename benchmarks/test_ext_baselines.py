"""Extension bench: the Sec. 8 related-work baselines RADS never raced.

The paper dismisses two more families qualitatively; this bench puts
numbers behind both dismissals:

- Afrati-Ullman single-round multiway join [1]: "most edges have to be
  duplicated over several machines in the map phase, hence there is a
  scalability problem when the query pattern is complex".
- Fan et al. d-hop replication [6, 5]: on small-diameter graphs "the
  entire partition of the neighboring machine may have to be fetched",
  straining network and memory.
"""

from conftest import run_once

from repro.bench.experiments import bench_graph
from repro.bench.harness import make_cluster
from repro.core.rads import RADSEngine
from repro.engines import MultiwayJoinEngine, ReplicationEngine
from repro.query import paper_query

QUERIES = ["q1", "q2", "q4", "q8"]
DATASETS = ["roadnet", "dblp"]


def run_grid():
    rows = []
    for dataset in DATASETS:
        graph = bench_graph(dataset)
        base = make_cluster(graph, 10)
        for qname in QUERIES:
            pattern = paper_query(qname)
            engines = {
                "RADS": RADSEngine(),
                "Multiway": MultiwayJoinEngine(),
                "Replication": ReplicationEngine(),
            }
            row = {"dataset": dataset, "query": qname}
            counts = set()
            for label, engine in engines.items():
                result = engine.run(
                    base.fresh_copy(), pattern, collect_embeddings=False
                )
                assert not result.failed, f"{label} failed on {dataset}/{qname}"
                counts.add(result.embedding_count)
                row[label] = {
                    "time": result.makespan,
                    "comm": result.total_comm_bytes,
                    "peak": result.peak_memory,
                }
            assert len(counts) == 1, f"count mismatch on {dataset}/{qname}"
            rows.append(row)
    return rows


def format_rows(rows):
    engines = ["RADS", "Multiway", "Replication"]
    lines = [
        "Extension - related-work baselines (10 machines, simulated)",
        f"{'dataset/query':<16}"
        + "".join(f"{e + ' t(s)/comm(KB)':>28}" for e in engines),
    ]
    for row in rows:
        cells = "".join(
            f"{row[e]['time']:>14.4f}/{row[e]['comm'] / 1024:>12.1f}"
            for e in engines
        )
        lines.append(f"{row['dataset'] + '/' + row['query']:<16}{cells}")
    return "\n".join(lines)


def test_ext_baselines(benchmark, report):
    rows = run_once(benchmark, run_grid)
    report("ext_baselines", format_rows(rows))

    by_key = {(r["dataset"], r["query"]): r for r in rows}
    # Shape 1: multiway replication bites hardest on the most complex
    # query — its traffic on q8 (6 vertices, 9 edges) dwarfs RADS' on
    # every dataset.
    for dataset in DATASETS:
        row = by_key[(dataset, "q8")]
        assert row["Multiway"]["comm"] > 10 * row["RADS"]["comm"]
    # Shape 2: d-hop replication is cheap on the huge-diameter road
    # network but heavy on the dense small-diameter graph.
    road = by_key[("roadnet", "q4")]
    dblp = by_key[("dblp", "q4")]
    assert dblp["Replication"]["comm"] > 2 * dblp["RADS"]["comm"]
    assert (
        dblp["Replication"]["comm"] / (dblp["RADS"]["comm"] + 1)
        > road["Replication"]["comm"] / (road["RADS"]["comm"] + 1)
    )
    # Shape 3: RADS wins or ties on time on the road network, where SM-E
    # absorbs nearly everything.
    for qname in QUERIES:
        row = by_key[("roadnet", qname)]
        assert row["RADS"]["time"] <= 1.5 * min(
            row["Multiway"]["time"], row["Replication"]["time"]
        )
