"""Fig. 12: scalability ratio t(5 nodes)/t(m nodes) for m in {5, 10, 15}.

Paper shape: RADS scales near-linearly on RoadNet (SM-E keeps the machines
independent) and well on DBLP; ideal linear speedup would be ratio m/5.
"""

from conftest import run_once

from repro.bench.experiments import exp_scalability


def format_ratios(name, ratios):
    machines = sorted(next(iter(ratios.values())).keys())
    lines = [f"Fig. 12 - scalability ratio over {name} (t5/tm)"]
    lines.append(f"{'engine':<10}" + "".join(f"{m:>8}" for m in machines))
    for engine, per_m in ratios.items():
        lines.append(
            f"{engine:<10}"
            + "".join(f"{per_m[m]:>8.2f}" for m in machines)
        )
    return "\n".join(lines)


def test_fig12_scalability_roadnet(benchmark, report):
    ratios = run_once(benchmark, lambda: exp_scalability("roadnet"))
    report("fig12_scalability_roadnet", format_ratios("roadnet", ratios))
    rads = ratios["RADS"]
    # Monotone speedup; ideal at 15/5 would be 3.0, and the scaled-down
    # simulation keeps a solid fraction of it.
    assert rads[5] == 1.0
    assert rads[5] < rads[10] <= rads[15] * 1.02
    assert rads[15] > 1.5

def test_fig12_scalability_dblp(benchmark, report):
    ratios = run_once(benchmark, lambda: exp_scalability("dblp"))
    report("fig12_scalability_dblp", format_ratios("dblp", ratios))
    rads = ratios["RADS"]
    assert rads[10] > 1.2
    assert rads[15] >= rads[10] * 0.9  # no collapse at higher node counts


def test_fig12_scalability_livejournal(benchmark, report):
    # Paper Fig. 12(c): only Crystal and RADS scale to this dataset; the
    # dense graphs run at a reduced scale to keep the bench tractable.
    # Known scale artifact (recorded in EXPERIMENTS.md): with zero SM-E on
    # this small-diameter graph, RADS's per-machine compute shrinks with
    # the node count while its fetch/verify message costs grow, so its
    # curve is flat-to-declining here; Crystal's speedup reproduces.
    ratios = run_once(
        benchmark, lambda: exp_scalability("livejournal", scale=1.5)
    )
    report(
        "fig12_scalability_livejournal",
        format_ratios("livejournal", ratios),
    )
    assert ratios["Crystal"][15] > 1.5
    rads = ratios["RADS"]
    assert rads[5] == 1.0
    assert rads[15] > 0.4  # bounded decline, no collapse


def test_fig12_scalability_uk2002(benchmark, report):
    # Paper Fig. 12(d): Crystal and RADS only (same scale caveat as
    # LiveJournal above).
    ratios = run_once(
        benchmark, lambda: exp_scalability("uk2002", scale=1.5)
    )
    report("fig12_scalability_uk2002", format_ratios("uk2002", ratios))
    assert ratios["Crystal"][15] > 1.2
    rads = ratios["RADS"]
    assert rads[5] == 1.0
    assert rads[15] > 0.4
