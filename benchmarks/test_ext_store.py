"""Extension benchmark: indexed store reads vs full decompression.

The embedding store answers ``page`` and ``lookup`` from order-based
indexes over the trie columns — a page is a contiguous slice of the
sorted leaf order, a lookup a union of per-level posting ranges.  The
naive alternative decompresses the whole stored set per read and slices
or filters it in Python.  This benchmark tables queries/sec for both,
at three result-set sizes, plus the compression the columns achieve
over the flat embedding list.

The point of the table is the scaling: indexed reads stay roughly flat
as the stored set grows, full decompression degrades linearly.
"""

from __future__ import annotations

import random
import time

from conftest import run_once

import repro
from repro.core.embedding_trie import embedding_list_bytes
from repro.graph import powerlaw_cluster
from repro.store import TrieColumns

#: Graph sizes giving three well-separated stored-set sizes for QUERY.
GRAPH_SIZES = (200, 800, 2400)
QUERY = "q1"
PAGE_LIMIT = 100
READS = 60


def _stored_columns(num_vertices: int) -> TrieColumns:
    graph = powerlaw_cluster(num_vertices, edges_per_vertex=4, seed=11)
    pattern = repro.resolve_query(QUERY)
    result = (
        repro.open(graph).with_cluster(machines=4)
        .engine("rads").query(QUERY).run(collect=True)
    )
    return TrieColumns.from_embeddings(
        result.embeddings, pattern.num_vertices
    )


def _throughput(fn, reads) -> float:
    start = time.perf_counter()
    for request in reads:
        fn(request)
    return len(reads) / (time.perf_counter() - start)


def _measure(columns: TrieColumns) -> dict:
    rng = random.Random(7)
    total = columns.leaf_count
    offsets = [rng.randrange(max(1, total - PAGE_LIMIT)) for _ in range(READS)]
    vertices = [row[0] for row in columns.decompress_range(0, READS)]

    page_indexed = _throughput(
        lambda off: columns.decompress_range(off, PAGE_LIMIT), offsets
    )
    page_full = _throughput(
        lambda off: columns.decompress_all()[off:off + PAGE_LIMIT], offsets
    )
    lookup_indexed = _throughput(columns.lookup, vertices)
    lookup_full = _throughput(
        lambda v: [e for e in columns.decompress_all() if v in e], vertices
    )
    return {
        "total": total,
        "page_indexed": page_indexed,
        "page_full": page_full,
        "lookup_indexed": lookup_indexed,
        "lookup_full": lookup_full,
        "trie_bytes": columns.memory_bytes(),
        "list_bytes": embedding_list_bytes(total, columns.depth),
    }


def test_store_read_throughput(benchmark, report):
    def experiment():
        return [
            (n, _measure(_stored_columns(n))) for n in GRAPH_SIZES
        ]

    rows = run_once(benchmark, experiment)

    lines = [
        f"Indexed store reads vs full decompression — query {QUERY}, "
        f"{READS} reads each, pages of {PAGE_LIMIT}",
        f"{'|V|':>5} {'stored':>8} {'page idx':>10} {'page full':>10} "
        f"{'speedup':>8} {'look idx':>10} {'look full':>10} "
        f"{'speedup':>8} {'compress':>9}",
    ]
    for n, m in rows:
        lines.append(
            f"{n:>5} {m['total']:>8} {m['page_indexed']:>8.0f}/s "
            f"{m['page_full']:>8.0f}/s "
            f"{m['page_indexed'] / m['page_full']:>7.1f}x "
            f"{m['lookup_indexed']:>8.0f}/s {m['lookup_full']:>8.0f}/s "
            f"{m['lookup_indexed'] / m['lookup_full']:>7.1f}x "
            f"{m['list_bytes'] / m['trie_bytes']:>8.2f}x"
        )
    report("ext_store_reads", "\n".join(lines))

    # The sizes must actually be well separated...
    totals = [m["total"] for _, m in rows]
    assert totals == sorted(totals) and totals[-1] > 3 * totals[0]
    # ...and on the largest set the indexes must beat per-read full
    # decompression for both read shapes.
    _, largest = rows[-1]
    assert largest["page_indexed"] > largest["page_full"]
    assert largest["lookup_indexed"] > largest["lookup_full"]
