"""Robustness sweep: the paper's 8G-cap anecdote (Exp-4).

"we tried to set a memory upper bound ... and test query q6, Crystal starts
crashing due to memory leaks, while RADS successfully finished the query".
"""

from conftest import run_once

from repro.bench.experiments import exp_robustness


def format_rows(rows):
    engines = list(rows[0].survived)
    lines = [
        "Robustness - memory-cap sweep on uk2002 / q6",
        f"{'cap':>12}" + "".join(f"{e:>14}" for e in engines),
    ]
    for row in rows:
        label = "unlimited" if row.cap_mb is None else f"{row.cap_mb:.0f} MB"
        cells = []
        for e in engines:
            if row.survived[e]:
                cells.append(f"{row.peak_mb[e]:>11.2f} MB")
            else:
                cells.append(f"{'OOM':>14}")
        lines.append(f"{label:>12}" + "".join(cells))
    return "\n".join(lines)


def test_robustness_memory_cap(benchmark, report):
    rows = run_once(benchmark, exp_robustness)
    report("robustness_memory", format_rows(rows))

    # RADS survives every cap in the sweep.
    assert all(row.survived["RADS"] for row in rows)
    # At least one cap kills Crystal while RADS survives (the 8G anecdote).
    assert any(
        not row.survived["Crystal"] and row.survived["RADS"] for row in rows
    )
    # TwinTwig dies no later than Crystal does.
    tightest_tt = min(
        (i for i, row in enumerate(rows) if not row.survived["TwinTwig"]),
        default=len(rows),
    )
    tightest_cr = min(
        (i for i, row in enumerate(rows) if not row.survived["Crystal"]),
        default=len(rows),
    )
    assert tightest_tt <= tightest_cr
