"""Extension bench: partitioning sensitivity of RADS.

Not a paper figure, but a paper dependency: RADS's SM-E split (Sec. 3.1)
lives or dies by partition locality — border distance must reach the query
span for a candidate to stay out of the distributed phase.  The paper
simply uses METIS; this bench quantifies what that choice buys by racing
the METIS-like multilevel partitioner against hash partitioning (no
locality) and label propagation (cheap locality) on the same graphs.
"""

from conftest import run_once

from repro.bench.experiments import bench_graph
from repro.cluster import Cluster
from repro.core.rads import RADSEngine
from repro.partition.label_propagation import LabelPropagationPartitioner
from repro.partition.metis_like import MetisLikePartitioner
from repro.partition.partitioner import HashPartitioner
from repro.partition.stats import partition_report
from repro.query import paper_query

DATASETS = ["roadnet", "dblp"]
QUERY = "q4"
PARTITIONERS = {
    "metis-like": lambda: MetisLikePartitioner(seed=0),
    "label-prop": lambda: LabelPropagationPartitioner(seed=0),
    "hash": lambda: HashPartitioner(seed=0),
}


def run_grid():
    rows = []
    pattern = paper_query(QUERY)
    for dataset in DATASETS:
        graph = bench_graph(dataset)
        row = {"dataset": dataset}
        counts = set()
        for label, factory in PARTITIONERS.items():
            cluster = Cluster.create(graph, 10, partitioner=factory())
            report = partition_report(cluster.partition)
            result = RADSEngine().run(
                cluster, pattern, collect_embeddings=False
            )
            assert not result.failed
            counts.add(result.embedding_count)
            sme = result.counters.get("sme_embeddings", 0)
            row[label] = {
                "cut": report.edge_cut_fraction,
                "border": report.border_fraction,
                "time": result.makespan,
                "comm": result.total_comm_bytes,
                "sme": sme,
                "total": result.embedding_count,
            }
        assert len(counts) == 1, "partitioner changed the result set"
        rows.append(row)
    return rows


def format_rows(rows):
    lines = [
        f"Extension - partitioning sensitivity (RADS, {QUERY}, 10 machines)",
        f"{'dataset':<12}{'partitioner':<13}{'cut%':>7}{'border%':>9}"
        f"{'SM-E%':>8}{'time(s)':>10}{'comm(KB)':>11}",
    ]
    for row in rows:
        for label in PARTITIONERS:
            cell = row[label]
            sme_pct = 100.0 * cell["sme"] / max(1, cell["total"])
            lines.append(
                f"{row['dataset']:<12}{label:<13}"
                f"{100 * cell['cut']:>7.1f}{100 * cell['border']:>9.1f}"
                f"{sme_pct:>8.1f}{cell['time']:>10.4f}"
                f"{cell['comm'] / 1024:>11.1f}"
            )
    return "\n".join(lines)


def test_ext_partitioning(benchmark, report):
    rows = run_once(benchmark, run_grid)
    report("ext_partitioning", format_rows(rows))

    for row in rows:
        # Locality-aware partitioners cut fewer edges than hashing...
        assert row["metis-like"]["cut"] < row["hash"]["cut"]
        # ...which shows up as less RADS traffic.
        assert row["metis-like"]["comm"] < row["hash"]["comm"]
    # On the road network the effect is dramatic: hash partitioning makes
    # nearly every vertex a border vertex, killing SM-E entirely.
    road = rows[0]
    assert road["metis-like"]["border"] < 0.5
    assert road["hash"]["border"] > 0.9
    assert road["metis-like"]["sme"] > road["hash"]["sme"]
