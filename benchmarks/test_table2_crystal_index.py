"""Table 2: size of Crystal's clique index files vs the data graphs."""

from conftest import run_once

from repro.bench.experiments import exp_table2


def format_rows(rows):
    header = (
        f"{'Dataset':<14}{'Graph MB':>10}{'Index MB':>10}{'Ratio':>8}"
        f"{'#K3':>10}{'#K4':>10}"
    )
    lines = ["Table 2 - Crystal clique-index size", header]
    for r in rows:
        lines.append(
            f"{r['dataset']:<14}{r['graph_mb']:>10}{r['index_mb']:>10}"
            f"{r['ratio']:>8}{r['cliques_3']:>10}{r['cliques_4']:>10}"
        )
    return "\n".join(lines)


def test_table2_crystal_index(benchmark, report):
    rows = run_once(benchmark, exp_table2)
    report("table2_crystal_index", format_rows(rows))

    by_name = {r["dataset"]: r for r in rows}
    # Paper shape (Table 2): the index is several times the graph on every
    # dataset (DBLP 13M -> 210M, UK 4.1G -> 60G), with RoadNet - nearly
    # clique-free - showing the smallest blow-up.
    assert by_name["DBLP"]["ratio"] > 3.0
    assert by_name["UK2002"]["ratio"] > 3.0
    assert by_name["RoadNet"]["ratio"] == min(r["ratio"] for r in rows)
    assert by_name["DBLP"]["ratio"] == max(r["ratio"] for r in rows)
