"""Ablation bench: the score-function exponent rho (paper Sec. 4.3).

Eq. 3 weights verification edges by ``1 / (i+1)^rho``; the paper states
"in our experiments we use rho = 1" without justification.  This bench
sweeps rho and records what that choice costs or buys: rho = 0 ignores
round position entirely, large rho cares only about the first round.
"""

from conftest import run_once

from repro.bench.experiments import bench_graph
from repro.bench.harness import make_cluster
from repro.core.rads import RADSEngine
from repro.query import paper_query
from repro.query.plan import best_execution_plan

RHOS = [0.0, 0.5, 1.0, 2.0, 4.0]
QUERIES = ["q4", "q5", "q6", "q7", "q8"]
DATASET = "dblp"


def run_sweep():
    graph = bench_graph(DATASET)
    base = make_cluster(graph, 10)
    table: dict[float, dict[str, float]] = {}
    counts: dict[str, set[int]] = {q: set() for q in QUERIES}
    for rho in RHOS:
        row: dict[str, float] = {}
        for qname in QUERIES:
            engine = RADSEngine(
                plan_provider=lambda p, _rho=rho: best_execution_plan(p, _rho)
            )
            result = engine.run(
                base.fresh_copy(), paper_query(qname),
                collect_embeddings=False,
            )
            assert not result.failed
            counts[qname].add(result.embedding_count)
            row[qname] = result.makespan
        table[rho] = row
    for qname, seen in counts.items():
        assert len(seen) == 1, f"rho changed the result set on {qname}"
    return table


def format_table(table):
    lines = [
        f"Ablation - plan score exponent rho ({DATASET}, RADS time in ms)",
        f"{'rho':>6}" + "".join(f"{q:>10}" for q in QUERIES)
        + f"{'total':>10}",
    ]
    for rho, row in table.items():
        total = sum(row.values())
        lines.append(
            f"{rho:>6.1f}"
            + "".join(f"{row[q] * 1e3:>10.3f}" for q in QUERIES)
            + f"{total * 1e3:>10.3f}"
        )
    return "\n".join(lines)


def test_ablation_rho(benchmark, report):
    table = run_once(benchmark, run_sweep)
    report("ablation_rho", format_table(table))

    totals = {rho: sum(row.values()) for rho, row in table.items()}
    # The paper's rho = 1 must be competitive: within 25% of the best
    # exponent in aggregate.  (It need not win outright — the sweep is the
    # point of the ablation.)
    assert totals[1.0] <= 1.25 * min(totals.values())
