"""Extension benchmark: incremental deltas vs full re-enumeration.

Streams edge batches of three sizes into a live graph with a registered
continuous triangle + square watch, and times two ways of keeping the
answers fresh per batch:

- **incremental** — the streaming matcher's delta (root the backtracking
  machinery at each touched edge, attribute embeddings to the first
  touched edge they use), the path ``ContinuousQueryManager.ingest``
  runs;
- **full recount** — re-enumerate both snapshots and diff the sets, the
  thing a one-shot service would have to do.

Both must produce identical delta sets (asserted per batch — this is the
parity acceptance run at benchmark scale); the table reports
batches/sec for each method and the speedup.  Incremental work scales
with batch size × pattern-local neighbourhoods, full recount with graph
size, so the gap is widest on small batches — exactly the firehose
regime the streaming layer exists for.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import run_once

from repro.bench.experiments import bench_graph
from repro.query import named_patterns
from repro.streaming import IncrementalMatcher, full_embeddings

PATTERNS = ("triangle", "square")
#: Edge-batch sizes (adds + deletes each batch, half and half).
BATCH_SIZES = (4, 16, 64)
#: Batches timed per (method, size) cell.
BATCHES = 6


def _sample_absent(rng, taken, n, count):
    """``count`` distinct canonical edges not in ``taken`` (rejection)."""
    picked = []
    chosen = set()
    while len(picked) < count:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in taken or edge in chosen:
            continue
        chosen.add(edge)
        picked.append(edge)
    return picked


def _make_batches(graph, size, count, seed):
    """``count`` half-add/half-delete batches applied back to back."""
    rng = np.random.default_rng(seed)
    batches = []
    snapshots = [graph]
    for _ in range(count):
        present = sorted(graph.edges())
        taken = set(present)
        adds = _sample_absent(rng, taken, graph.num_vertices, size // 2)
        dels = [
            present[i]
            for i in rng.choice(len(present), size - size // 2,
                                replace=False)
        ]
        batches.append((adds, dels))
        graph = graph.apply_batch(additions=adds, deletions=dels)
        snapshots.append(graph)
    return batches, snapshots


def test_ext_streaming_incremental_vs_full(benchmark, report):
    base = bench_graph("roadnet")
    patterns = {
        name: named_patterns()[name] for name in PATTERNS
    }
    matchers = {
        name: IncrementalMatcher(pattern)
        for name, pattern in patterns.items()
    }

    def experiment():
        rows = []
        for size in BATCH_SIZES:
            batches, snapshots = _make_batches(
                base, size, BATCHES, seed=size
            )
            # Incremental: delta from the touched edges only.
            start = time.perf_counter()
            incremental = []
            for (adds, dels), old, new in zip(
                batches, snapshots, snapshots[1:]
            ):
                per_pattern = {}
                for name, matcher in matchers.items():
                    added, removed = matcher.delta(old, new, adds, dels)
                    per_pattern[name] = (set(added), set(removed))
                incremental.append(per_pattern)
            inc_elapsed = time.perf_counter() - start

            # Full recount: enumerate every snapshot once (the previous
            # snapshot's set is kept, as a one-shot service would), diff
            # consecutive pairs.
            start = time.perf_counter()
            recounted = []
            previous = {
                name: full_embeddings(snapshots[0], pattern)
                for name, pattern in patterns.items()
            }
            for new in snapshots[1:]:
                per_pattern = {}
                for name, pattern in patterns.items():
                    new_full = full_embeddings(new, pattern)
                    old_full = previous[name]
                    per_pattern[name] = (
                        new_full - old_full, old_full - new_full
                    )
                    previous[name] = new_full
                recounted.append(per_pattern)
            full_elapsed = time.perf_counter() - start

            assert incremental == recounted
            rows.append((size, inc_elapsed, full_elapsed))
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        f"Streaming deltas — roadnet, {' + '.join(PATTERNS)} watches, "
        f"{BATCHES} mixed batches per size",
        f"  {'batch':>6}   {'incremental':>12}   {'full recount':>12}"
        f"   {'speedup':>8}",
    ]
    for size, inc_elapsed, full_elapsed in rows:
        inc_bps = BATCHES / inc_elapsed if inc_elapsed else float("inf")
        full_bps = BATCHES / full_elapsed if full_elapsed else float("inf")
        speedup = full_elapsed / inc_elapsed if inc_elapsed else float("inf")
        lines.append(
            f"  {size:>6}   {inc_bps:>9.1f} b/s   {full_bps:>9.1f} b/s"
            f"   {speedup:>7.1f}x"
        )
    lines.append("  delta sets: identical between methods (asserted)")
    report("ext_streaming", "\n".join(lines))
