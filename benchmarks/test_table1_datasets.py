"""Table 1: profiles of the four (synthetic-analogue) datasets."""

from conftest import run_once

from repro.bench.experiments import exp_table1


def format_rows(rows):
    header = (
        f"{'Dataset':<14}{'|V|':>10}{'|E|':>10}"
        f"{'Avg degree':>12}{'Diameter>=':>12}"
    )
    lines = ["Table 1 - dataset profiles", header]
    for r in rows:
        lines.append(
            f"{r['dataset']:<14}{r['num_vertices']:>10}{r['num_edges']:>10}"
            f"{r['avg_degree']:>12}{r['diameter_lb']:>12}"
        )
    return "\n".join(lines)


def test_table1_dataset_profiles(benchmark, report):
    rows = run_once(benchmark, exp_table1)
    report("table1_datasets", format_rows(rows))

    profiles = {r["dataset"]: r for r in rows}
    # Shape checks mirroring the paper's Table 1:
    # RoadNet is the sparsest and has by far the largest diameter.
    road = profiles["RoadNet"]
    assert road["avg_degree"] == min(r["avg_degree"] for r in rows)
    assert road["diameter_lb"] == max(r["diameter_lb"] for r in rows)
    # Density ordering: RoadNet < DBLP < LiveJournal < UK2002.
    assert (
        road["avg_degree"]
        < profiles["DBLP"]["avg_degree"] + 1
        <= profiles["LiveJournal"]["avg_degree"]
        < profiles["UK2002"]["avg_degree"]
    )
