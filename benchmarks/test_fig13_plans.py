"""Fig. 13: effectiveness of the query execution plan (RanS / RanM / RADS).

Paper shape: on RoadNet the three plans are nearly identical (SM-E does the
work regardless of plan); on the denser datasets the fully optimized plan
wins, and random-star plans (more rounds) lose the most.
"""

from conftest import run_once

from repro.bench.experiments import exp_plan_effectiveness


def format_rows(name, rows):
    lines = [
        f"Fig. 13 - execution-plan effectiveness over {name} (simulated s)",
        f"{'query':<8}{'RanS':>12}{'RanM':>12}{'RADS':>12}",
    ]
    for r in rows:
        lines.append(
            f"{r['query']:<8}{r['RanS']:>12.4f}{r['RanM']:>12.4f}"
            f"{r['RADS']:>12.4f}"
        )
    return "\n".join(lines)


def test_fig13_plans_dblp(benchmark, report):
    rows = run_once(benchmark, lambda: exp_plan_effectiveness("dblp"))
    report("fig13_plans_dblp", format_rows("dblp", rows))
    # The optimized plan never loses badly, and wins in aggregate.
    total = {k: sum(r[k] for r in rows) for k in ("RanS", "RanM", "RADS")}
    assert total["RADS"] <= total["RanM"] * 1.05
    assert total["RADS"] <= total["RanS"] * 1.05


def test_fig13_plans_roadnet(benchmark, report):
    rows = run_once(benchmark, lambda: exp_plan_effectiveness("roadnet"))
    report("fig13_plans_roadnet", format_rows("roadnet", rows))
    # "the processing time [is] almost the same for the 3 execution plans"
    # on RoadNet: within a small factor of each other in aggregate.
    total = {k: sum(r[k] for r in rows) for k in ("RanS", "RanM", "RADS")}
    assert total["RanS"] < total["RADS"] * 3
    assert total["RADS"] < total["RanS"] * 3
