"""Ablation bench: how much each RADS design choice contributes.

Not a paper figure — DESIGN.md calls out SM-E (Sec. 3.1), the foreign-
vertex cache (Sec. 3.2/Appendix B) and checkR/shareR work stealing as the
load-bearing design choices; this bench isolates each on the dataset where
it should matter most.
"""

from conftest import run_once

from repro.bench.experiments import bench_graph
from repro.bench.harness import make_cluster
from repro.core.rads import RADSEngine
from repro.query import paper_query


def run_variants():
    variants = {
        "full": RADSEngine(),
        "no-SM-E": RADSEngine(enable_sme=False),
        "no-steal": RADSEngine(enable_work_stealing=False),
        "no-cache": RADSEngine(cache_budget_fraction=1e-9),
    }
    rows = []
    for dataset_name, qname in (("roadnet", "q1"), ("dblp", "q5")):
        graph = bench_graph(dataset_name)
        base = make_cluster(graph, 10)
        row = {"dataset": dataset_name, "query": qname}
        counts = set()
        for label, engine in variants.items():
            result = engine.run(
                base.fresh_copy(), paper_query(qname),
                collect_embeddings=False,
            )
            counts.add(result.embedding_count)
            row[label] = {
                "time": result.makespan,
                "comm": result.total_comm_bytes,
                "peak": result.peak_memory,
            }
        assert len(counts) == 1, "ablations changed the result set"
        rows.append(row)
    return rows


def format_rows(rows):
    variants = ["full", "no-SM-E", "no-steal", "no-cache"]
    lines = ["Ablation - RADS design choices (time s / comm KB / peak MB)"]
    lines.append(
        f"{'dataset/query':<18}"
        + "".join(f"{v:>26}" for v in variants)
    )
    for row in rows:
        cells = "".join(
            f"{row[v]['time']:>10.4f}/{row[v]['comm'] / 1024:>7.1f}"
            f"/{row[v]['peak'] / 1e6:>6.1f}"
            for v in variants
        )
        lines.append(f"{row['dataset'] + '/' + row['query']:<18}{cells}")
    return "\n".join(lines)


def test_ablation_rads(benchmark, report):
    rows = run_once(benchmark, run_variants)
    report("ablation_rads", format_rows(rows))

    road = rows[0]
    # SM-E is the headline win on road networks: interior candidates are
    # communication-free either way, but SM-E streams their results instead
    # of paying R-Meef's trie/verification machinery — time and peak memory
    # must rise without it.
    # (At this simulation scale the time delta is within noise — the
    # memory delta is the robust signal.)
    assert road["no-SM-E"]["time"] >= road["full"]["time"] * 0.99
    assert road["no-SM-E"]["peak"] > road["full"]["peak"]
    # The cache is what keeps fetch traffic down (Exp-2's explanation).
    assert road["no-cache"]["comm"] > 1.5 * road["full"]["comm"]
    dblp = rows[1]
    assert dblp["no-cache"]["comm"] > 1.05 * dblp["full"]["comm"]
