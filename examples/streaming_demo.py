#!/usr/bin/env python
"""Streaming ingest walkthrough: watch a triangle alert fire on a live graph.

Every query so far ran one-shot over a frozen CSR graph.  This demo
shows the PR 7 streaming surface end to end, twice:

1. **Locally**, through the session API — ``Session.watch(pattern)``
   registers a continuous query, ``Session.ingest(additions,
   deletions)`` applies an edge batch, and the watch's ``poll()`` hands
   back exactly the embeddings that appeared and vanished, computed
   incrementally from the touched edges (with the full-recount diff
   asserted alongside, because seeing is believing).
2. **Over a socket**, through the query service — a subscriber
   registers the same pattern in push mode and receives each delta as
   an unsolicited protocol line while another connection streams edge
   batches in (the CLI twins are ``repro subscribe`` and
   ``repro ingest``).

Run:  python examples/streaming_demo.py
"""

import threading

import repro
from repro.graph import powerlaw_cluster
from repro.streaming import full_embeddings


def pick_batches(graph, count=6):
    """A few edges to add (absent) and delete (present)."""
    present = sorted(graph.edges())
    taken = set(present)
    absent = [
        (u, v)
        for u in range(graph.num_vertices)
        for v in range(u + 1, graph.num_vertices)
        if (u, v) not in taken
    ]
    return absent[:count], present[:count]


def main() -> None:
    # 1. A live-ish social graph and a session.
    graph = powerlaw_cluster(300, edges_per_vertex=4, seed=11)
    triangle = repro.pattern("a-b, b-c, c-a")
    additions, deletions = pick_batches(graph)
    print(f"data graph: {graph}")

    session = repro.open(graph).with_cluster(machines=4)
    session.engine("rads").query("triangle")
    before = session.run().embedding_count
    print(f"triangles before any batch: {before}")

    # 2. Register the alert and stream a batch in.  The delta is
    #    computed from the touched edges only — no re-enumeration.
    alerts = session.watch(triangle)
    report = session.ingest(additions=additions, deletions=deletions)
    [delta] = alerts.poll()
    print(
        f"\nbatch -> version {report['version']}: "
        f"+{report['batch']['additions']} -{report['batch']['deletions']} "
        f"edges"
    )
    print(f"alert fired: {delta.added_count} new triangles, "
          f"{delta.removed_count} vanished")
    for emb in (delta.added or [])[:3]:
        print(f"   + {emb}")
    for emb in (delta.removed or [])[:3]:
        print(f"   - {emb}")

    # 3. The receipts: the incremental delta equals the diff of full
    #    re-enumerations on the two snapshots, and the session now
    #    serves the new version.
    new = graph.apply_batch(additions=additions, deletions=deletions)
    old_full, new_full = (
        full_embeddings(graph, triangle),
        full_embeddings(new, triangle),
    )
    assert set(delta.added) == new_full - old_full
    assert set(delta.removed) == old_full - new_full
    after = session.run().embedding_count
    assert after == len(new_full)
    print(f"parity holds; session now counts {after} triangles")
    session.unwatch(alerts)

    # 4. The same dance over a socket: serve the *original* graph,
    #    subscribe in push mode, ingest from a second connection.
    with repro.open(graph).with_cluster(machines=4).serve(
        port=0, threads=2
    ) as server:
        host, port = server.address
        print(f"\nserving on {host}:{port}")
        received = []
        with repro.connect(server.address, timeout=30) as subscriber:
            subscription = subscriber.subscribe("a-b, b-c, c-a")

            def consume():
                for record in subscription:
                    received.append(record)
                    print(
                        f"pushed delta v{record.version}: "
                        f"+{record.added_count} -{record.removed_count}"
                    )
                    if len(received) == 2:
                        return

            consumer = threading.Thread(target=consume, daemon=True)
            consumer.start()

            with repro.connect(server.address, timeout=30) as ingester:
                ingester.ingest(additions=additions[:3])
                ingester.ingest(
                    additions=additions[3:], deletions=deletions[:2]
                )
            consumer.join(timeout=30)
            subscription.close()
        assert [r.version for r in received] == [1, 2]
        print("subscriber saw both batches; demo complete")


if __name__ == "__main__":
    main()
