#!/usr/bin/env python
"""Embedding store walkthrough: persist a result set, restart, page it back.

``collect=True`` hands you every embedding in memory; ``collect="store"``
instead persists the enumeration as trie-compressed columns (the paper's
Sec. 5 compressed representation as an on-disk format) and serves reads
from order-based indexes:

1. a store-mode run enumerates once and writes the set (``store: stored``),
2. repeating it — even as an isomorphic rewrite — answers from disk
   without enumerating (``store: hit``),
3. ``page`` / ``lookup`` / ``aggregate`` are index range scans: limit/
   offset slices of the sorted leaf order, "embeddings containing data
   vertex v", and group-by-first-vertex / per-vertex / per-orbit counts,
4. a *restarted* server over the same directory serves byte-identical
   pages — the store, not the process, owns the results.

Run:  python examples/store_demo.py
"""

import tempfile

import repro
from repro.graph import powerlaw_cluster


def main() -> None:
    graph = powerlaw_cluster(400, edges_per_vertex=4, seed=42)
    store_dir = tempfile.mkdtemp(prefix="repro-store-")
    print(f"data graph: {graph}")
    print(f"store dir:  {store_dir}")

    # 1. Serve with a store attached.  The CLI twin is:
    #      python -m repro serve --graph g.npz --port 7463 --store-dir DIR
    session = repro.open(graph).with_cluster(machines=4)
    with session.serve(port=0, store_dir=store_dir) as server:
        with repro.connect(server.address) as client:
            # 2. Store-mode submission: enumerate once, persist the set.
            #      python -m repro submit --port 7463 --query q1 --store
            first = client.submit("q1", collect="store")
            print(f"\nstore run    -> store: {client.last_store}, "
                  f"{first.embedding_count} embeddings persisted")

            # An isomorphic rewrite keys to the same stored set.
            client.submit("w-x, x-y, y-z, z-w", collect="store")
            print(f"isomorphic   -> store: {client.last_store} "
                  f"(no re-enumeration)")

            # 3. Indexed reads.  The CLI twins are `repro page` /
            #    `repro lookup`.
            page = client.page("q1", limit=3, offset=5)
            print(f"\npage 5..8 of {page['total']}:")
            for emb in page["embeddings"]:
                print(f"   {emb}")

            vertex = page["embeddings"][0][0]
            found = client.lookup("q1", vertex=vertex)
            print(f"lookup v{vertex}: {found['count']} of {found['total']} "
                  f"stored embeddings contain it")

            agg = client.aggregate("q1", group_by="root")
            top = max(agg["groups"], key=agg["groups"].get)
            print(f"aggregate by root: {len(agg['groups'])} groups, "
                  f"busiest root vertex {top} "
                  f"({agg['groups'][top]} embeddings)")
            reference = client.page("q1", limit=3, offset=5)

    # 4. Restart: a fresh server over the same directory serves the same
    #    bytes without running anything.
    with session.serve(port=0, store_dir=store_dir) as server:
        with repro.connect(server.address) as client:
            again = client.page("q1", limit=3, offset=5)
            client.submit("q1", collect="store")
            print(f"\nafter restart -> store: {client.last_store}, "
                  f"pages identical: {again == reference}")


if __name__ == "__main__":
    main()
