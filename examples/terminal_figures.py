#!/usr/bin/env python
"""Render a miniature Fig. 8 as an ASCII bar chart in the terminal.

Runs the five engines over a small road network for three queries and
draws the paper-style grouped bar chart (log scale, OOM = empty bar)
without leaving the terminal.

Run:  python examples/terminal_figures.py
"""

from repro.bench.datasets import roadnet_like
from repro.bench.harness import run_query_grid
from repro.bench.plotting import grouped_bar_chart
from repro.engines import all_engines


def main() -> None:
    graph = roadnet_like(scale=0.25)
    engines = {name: cls() for name, cls in all_engines().items()}
    grid = run_query_grid(
        graph, "mini-roadnet", ["q1", "q2", "q4"],
        engines=engines, num_machines=4,
    )
    print(grouped_bar_chart(grid, title="time (simulated s)", log=True))
    print()
    print(
        grouped_bar_chart(
            grid,
            metric=lambda r: r.total_comm_bytes / 1024,
            title="communication (KB)",
            log=True,
        )
    )


if __name__ == "__main__":
    main()
