#!/usr/bin/env python
"""Render a miniature Fig. 8 as an ASCII bar chart in the terminal.

Runs the five engines over a small road network for three queries and
draws the paper-style grouped bar chart (log scale, OOM = empty bar)
without leaving the terminal.

Run:  python examples/terminal_figures.py
"""

import repro
from repro.bench.datasets import roadnet_like
from repro.bench.plotting import grouped_bar_chart


def main() -> None:
    graph = roadnet_like(scale=0.25)
    grid = (
        repro.open(graph)
        .with_cluster(machines=4)
        .run_grid(queries=["q1", "q2", "q4"], dataset_name="mini-roadnet")
    )
    print(grouped_bar_chart(grid, title="time (simulated s)", log=True))
    print()
    print(
        grouped_bar_chart(
            grid,
            metric=lambda r: r.total_comm_bytes / 1024,
            title="communication (KB)",
            log=True,
        )
    )


if __name__ == "__main__":
    main()
