"""Distributed shard runtime walkthrough: workers, recovery, parity.

Spawns two real ``repro worker`` daemon *processes* on localhost, runs a
query across them through the socket backend, kills one worker with
SIGKILL mid-roster, and shows the coordinator recovering — the surviving
shard re-executes the dead one's outstanding tasks and the result stays
bit-identical to a serial run (the ``distributed.*`` counters record the
fault).  The data graph is never written to disk: the coordinator ships
it to each worker once, cached by ``Graph.fingerprint()``.

Run from the repository root::

    python examples/distributed_demo.py
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys

import repro
from repro.distributed import stop_worker
from repro.graph import powerlaw_cluster

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"


def spawn_worker() -> tuple[subprocess.Popen, str]:
    """Start one `repro worker` daemon; returns (process, host:port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    # The daemon's first line is the readiness line: "worker serving on H:P"
    line = proc.stdout.readline().strip()
    address = line.rsplit(" ", 1)[-1]
    print(f"  spawned worker pid={proc.pid} at {address}")
    return proc, address


def main() -> int:
    graph = powerlaw_cluster(200, 3, seed=13)
    print(f"data graph: {graph}")

    print("spawning two local shard workers ...")
    workers = [spawn_worker() for _ in range(2)]
    shards = [address for _, address in workers]

    try:
        session = (
            repro.open(graph)
            .with_cluster(machines=4)
            .backend("socket", shards=shards)
            .engine("rads")
            .query("q4")
        )
        reference = (
            repro.open(graph).with_cluster(machines=4)
            .engine("rads").query("q4").run()
        )

        print("\nrunning q4 across both shards ...")
        healthy = session.run()
        print(f"  {healthy.summary()}")
        # Counts are backend-independent, always.  (RADS's *stats* can
        # differ from serial on graphs where its schedule-driven work
        # stealing kicks in — the same caveat as the process backend;
        # schedule-free engines are bit-identical across all backends.)
        assert healthy.embedding_count == reference.embedding_count
        print("  count identical to the serial backend")

        victim_proc, victim_addr = workers[0]
        print(f"\nkilling worker {victim_addr} (pid={victim_proc.pid}) "
              f"with SIGKILL ...")
        victim_proc.send_signal(signal.SIGKILL)
        victim_proc.wait()

        print("running q4 again on the degraded roster ...")
        recovered = session.run()
        print(f"  {recovered.summary()}")
        faults = {
            key: value
            for key, value in recovered.counters.items()
            if key.startswith("distributed.")
        }
        print(f"  fault counters: {faults}")
        assert recovered.embedding_count == reference.embedding_count
        # Resubmission must not skew the simulation: the degraded run's
        # stats equal the healthy socket run's, bit for bit.
        assert recovered.makespan == healthy.makespan
        assert recovered.total_comm_bytes == healthy.total_comm_bytes
        assert faults.get("distributed.lost_workers") == 1
        print("  survivor re-executed the lost shard's tasks; "
              "result unchanged")
        session.close()
        return 0
    finally:
        for proc, address in workers:
            if proc.poll() is None:
                stop_worker(address)
                proc.wait(timeout=30)
        print("\nworkers stopped")


if __name__ == "__main__":
    sys.exit(main())
