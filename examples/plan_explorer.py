#!/usr/bin/env python
"""Execution-plan explorer — Sec. 4's heuristics made visible.

For each paper query this prints every minimum-round execution plan with
its decomposition units, span of the start vertex, and Eq. (4) score, then
marks the plan RADS picks.  Finally it measures the runtime impact of plan
choice (the paper's Fig. 13 in miniature).

Run:  python examples/plan_explorer.py
"""

import repro
from repro.bench.datasets import dblp_like
from repro.query import (
    best_execution_plan,
    enumerate_execution_plans,
    paper_query,
    random_star_plan,
    score_plan,
)


def describe(plan) -> str:
    units = "; ".join(
        f"dp{i}=({u.pivot}|{','.join(map(str, u.leaves))})"
        for i, u in enumerate(plan.units)
    )
    return (
        f"{units}   span(start)={plan.pattern.span(plan.start_vertex)} "
        f"score={score_plan(plan):.2f}"
    )


def main() -> None:
    pattern = paper_query("q5")
    print(f"=== query {pattern.name} ===")
    best = best_execution_plan(pattern)
    plans = enumerate_execution_plans(pattern)
    print(f"{len(plans)} minimum-round plans "
          f"({best.num_rounds} units each); top five by score:\n")
    ranked = sorted(plans, key=score_plan, reverse=True)[:5]
    for plan in ranked:
        marker = "  <-- chosen" if describe(plan) == describe(best) else ""
        print(f"  {describe(plan)}{marker}")
    print(f"\nmatching order (Def. 10): {best.matching_order()}")

    # Measure the impact (Fig. 13 in miniature): optimized vs random-star.
    # RADS's plan provider is declarative factory configuration now.
    graph = dblp_like(scale=0.4)
    session = repro.open(graph).with_cluster(machines=4).query(pattern)
    for label, provider in [
        ("optimized", None),
        ("RanS", lambda p: random_star_plan(p, seed=1)),
    ]:
        kwargs = {} if provider is None else {"plan_provider": provider}
        result = session.engine("rads", **kwargs).run()
        print(
            f"{label:>10}: time {result.makespan:.4f}s  "
            f"comm {result.comm_mb:.3f} MB  "
            f"({result.embedding_count} embeddings)"
        )


if __name__ == "__main__":
    main()
