#!/usr/bin/env python
"""Observability walkthrough: traced runs, span trees, the metrics pipeline.

Shows the three surfaces PR 9 added on top of the query service:

1. ``Session.run(trace=True)`` — the engine's rounds and executor
   batches come back as one nested span tree on ``result.trace``,
2. a traced ``submit`` over a real socket against shard workers — the
   leaf spans are emitted *on the workers* and parented across the wire
   into the same tree (``worker.task`` under ``executor.batch``),
3. the live metrics pipeline — latency/queue-wait/cache-lookup
   histograms with p50/p95/p99, the slow-query log, and the
   Prometheus-style text exposition.

Tracing is off by default and costs nothing when off; a traced run's
counts and stats are bit-identical to an untraced one.  The CLI twins:

    python -m repro submit --port P --query q2 --trace
    python -m repro metrics --port P [--format text] [--watch]

Run:  python examples/tracing_demo.py
"""

import repro
from repro.api import RunConfig
from repro.distributed import ShardWorker
from repro.graph import powerlaw_cluster
from repro.service import QueryServer, connect


def show(node, parent_duration=None, indent="  "):
    """Pretty-print one span and its children (the CLI's --trace view)."""
    pct = ""
    if parent_duration:
        pct = f" ({100 * node['duration'] / parent_duration:3.0f}%)"
    print(f"{indent}{node['name']:<20} {node['duration'] * 1000:8.2f}ms{pct}")
    for child in node["children"]:
        show(child, node["duration"], indent + "  ")


def main() -> None:
    graph = powerlaw_cluster(600, edges_per_vertex=4, seed=42)

    # 1. A traced local run: the span tree rides the RunResult.
    session = repro.open(graph).with_cluster(machines=4)
    result = session.engine("rads").query("q2").run(trace=True)
    print(f"local traced run: {result.summary()}")
    print("span tree (session -> engine rounds -> executor batches):")
    show(result.trace)

    # 2. The same thing across real processes: two shard workers, a
    #    socket-backed server, and a traced submit.  The worker.task
    #    leaves below were emitted in the worker processes and shipped
    #    back inside the task responses.
    workers = [ShardWorker().start(), ShardWorker().start()]
    shards = ["%s:%d" % w.address for w in workers]
    config = RunConfig(machines=4, backend="socket", shards=shards)
    try:
        with QueryServer(graph, config, threads=2, cache=True) as server:
            with connect(server.address) as client:
                traced = client.submit("q2", engine="rads", trace=True)
                untraced = client.submit("q2", engine="rads")
                print("\ndistributed traced submit (leaves ran on "
                      f"{len(workers)} shard workers):")
                show(traced.trace)
                assert untraced.trace is None
                assert untraced.embedding_count == traced.embedding_count
                assert untraced.makespan == traced.makespan
                print("traced and untraced stats are bit-identical "
                      "(spans observe, never perturb)")

                # 3. The metrics pipeline after a small burst.
                for name in ("q1", "triangle", "q1", "q1"):
                    client.submit(name, engine="rads")
                metrics = client.metrics()
                latency = metrics["histograms"]["latency"]
                print(f"\nlatency histogram over {latency['count']} "
                      f"requests: p50={latency['p50'] * 1000:.1f}ms "
                      f"p95={latency['p95'] * 1000:.1f}ms "
                      f"p99={latency['p99'] * 1000:.1f}ms")
                slowest = metrics["slow_queries"][0]
                print(f"slowest query: {slowest['pattern']} via "
                      f"{slowest['engine']} "
                      f"({slowest['duration'] * 1000:.1f}ms)")

                text = client.metrics(format="text")
                sample = [line for line in text.splitlines()
                          if line.startswith(
                              "repro_histograms_latency_seconds")][:4]
                print("\nPrometheus-style exposition (excerpt):")
                for line in sample:
                    print(f"  {line}")
    finally:
        for worker in workers:
            worker.close()

    print("\nsee ROADMAP.md 'Observability' for the span schema, "
          "histogram buckets, and exposition format")


if __name__ == "__main__":
    main()
