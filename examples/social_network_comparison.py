#!/usr/bin/env python
"""Compare all five engines on a social-network graph (Exp-3 scenario).

On dense, heavy-tailed graphs the paper shows join-based engines (TwinTwig,
SEED) drowning in intermediate results, PSgL drowning in shuffled partial
matches, and Crystal staying competitive only on clique-bearing queries.
This example reproduces the comparison on a scaled-down LiveJournal
analogue for a triangle query (q2) and a triangle-free one (q1).

Run:  python examples/social_network_comparison.py
"""

from repro.bench.datasets import livejournal_like
from repro.bench.harness import make_cluster
from repro.engines import all_engines
from repro.query import paper_query


def main() -> None:
    graph = livejournal_like(scale=0.25)
    print(f"social graph: {graph} "
          f"(avg degree {graph.average_degree():.1f})")
    cluster = make_cluster(graph, num_machines=6)

    for qname in ("q2", "q1"):
        pattern = paper_query(qname)
        print(f"\n=== query {qname} ({pattern.name}) ===")
        counts = set()
        for name, engine_cls in all_engines().items():
            result = engine_cls().run(
                cluster.fresh_copy(), pattern, collect_embeddings=False
            )
            if result.failed:
                print(f"  {name:>9}: OOM")
                continue
            counts.add(result.embedding_count)
            print(
                f"  {name:>9}: time {result.makespan:9.4f}s   "
                f"comm {result.comm_mb:8.3f} MB   "
                f"peak {result.peak_memory / 1e6:7.2f} MB   "
                f"({result.embedding_count} embeddings)"
            )
        assert len(counts) == 1, "engines disagree!"


if __name__ == "__main__":
    main()
