#!/usr/bin/env python
"""Compare all five engines on a social-network graph (Exp-3 scenario).

On dense, heavy-tailed graphs the paper shows join-based engines (TwinTwig,
SEED) drowning in intermediate results, PSgL drowning in shuffled partial
matches, and Crystal staying competitive only on clique-bearing queries.
This example reproduces the comparison on a scaled-down LiveJournal
analogue with one `repro.api` session grid over a triangle query (q2) and
a triangle-free one (q1).

Run:  python examples/social_network_comparison.py
"""

import repro
from repro.bench.datasets import livejournal_like


def main() -> None:
    graph = livejournal_like(scale=0.25)
    print(f"social graph: {graph} "
          f"(avg degree {graph.average_degree():.1f})")

    # One grid call: the five paper engines x two queries, every run on a
    # fresh-stats copy of the same 6-machine partition.
    grid = (
        repro.open(graph)
        .with_cluster(machines=6)
        .run_grid(queries=["q2", "q1"], dataset_name="mini-livejournal")
    )

    for qname in grid.queries():
        print(f"\n=== query {qname} ===")
        counts = set()
        for name in grid.engines():
            result = grid.get(name, qname)
            if result.failed:
                print(f"  {name:>9}: OOM")
                continue
            counts.add(result.embedding_count)
            print(
                f"  {name:>9}: time {result.makespan:9.4f}s   "
                f"comm {result.comm_mb:8.3f} MB   "
                f"peak {result.peak_memory / 1e6:7.2f} MB   "
                f"({result.embedding_count} embeddings)"
            )
        assert len(counts) == 1, "engines disagree!"


if __name__ == "__main__":
    main()
