#!/usr/bin/env python
"""Asynchrony under stragglers: RADS vs. barrier-synchronised engines.

The paper motivates its asynchronous design with the synchronisation-delay
argument: synchronous systems run at the pace of the slowest machine.
This example slows one of six simulated machines down by increasing
factors and watches each engine's makespan respond.

Run:  python examples/straggler_tolerance.py
"""

from repro.bench.harness import make_cluster
from repro.core.rads import RADSEngine
from repro.engines import SEEDEngine, TwinTwigEngine
from repro.graph import community_graph
from repro.query import paper_query

SLOWDOWNS = [1, 2, 4, 8, 16]


def main() -> None:
    graph = community_graph(18, 14, intra_prob=0.4, inter_edges=3, seed=11)
    base = make_cluster(graph, num_machines=6)
    pattern = paper_query("q4")
    print(f"data graph: {graph}, query: {pattern.name}")
    print("machine 0 is slowed by the factor in the first column\n")

    engines = {
        "RADS": RADSEngine,
        "TwinTwig": TwinTwigEngine,
        "SEED": SEEDEngine,
    }
    header = f"{'slowdown':>9}" + "".join(f"{n:>13}" for n in engines)
    print(header)
    baselines: dict[str, float] = {}
    for slowdown in SLOWDOWNS:
        cells = []
        for name, engine_cls in engines.items():
            cluster = base.fresh_copy()
            cluster.set_speed_factor(0, 1.0 / slowdown)
            result = engine_cls().run(
                cluster, pattern, collect_embeddings=False
            )
            if slowdown == 1:
                baselines[name] = result.makespan
            cells.append(f"{result.makespan * 1e3:>11.3f}ms")
        print(f"{slowdown:>8}x" + "".join(cells))

    print(
        "\nRADS machines never wait at a barrier: fast machines steal the\n"
        "straggler's region groups (checkR/shareR), so the makespan grows\n"
        "far slower than under the synchronised join engines."
    )


if __name__ == "__main__":
    main()
