#!/usr/bin/env python
"""Asynchrony under stragglers: RADS vs. barrier-synchronised engines.

The paper motivates its asynchronous design with the synchronisation-delay
argument: synchronous systems run at the pace of the slowest machine.
This example slows one of six simulated machines down by increasing
factors (the RunConfig ``stragglers`` knob) and watches each engine's
makespan respond.

Run:  python examples/straggler_tolerance.py
"""

import repro
from repro.graph import community_graph

SLOWDOWNS = [1, 2, 4, 8, 16]
ENGINES = ["RADS", "TwinTwig", "SEED"]


def main() -> None:
    graph = community_graph(18, 14, intra_prob=0.4, inter_edges=3, seed=11)
    session = repro.open(graph).query("q4")
    print(f"data graph: {graph}, query: q4")
    print("machine 0 is slowed by the factor in the first column\n")

    header = f"{'slowdown':>9}" + "".join(f"{n:>13}" for n in ENGINES)
    print(header)
    for slowdown in SLOWDOWNS:
        session.with_cluster(
            machines=6,
            stragglers={0: slowdown} if slowdown > 1 else None,
        )
        cells = []
        for name in ENGINES:
            result = session.engine(name).run()
            cells.append(f"{result.makespan * 1e3:>11.3f}ms")
        print(f"{slowdown:>8}x" + "".join(cells))

    print(
        "\nRADS machines never wait at a barrier: fast machines steal the\n"
        "straggler's region groups (checkR/shareR), so the makespan grows\n"
        "far slower than under the synchronised join engines."
    )


if __name__ == "__main__":
    main()
