#!/usr/bin/env python
"""Road-network motif counting — the paper's Exp-1 scenario.

Road networks are the best case for RADS: with a locality-preserving
partition, nearly every vertex is far from a partition border, so the
border-distance/span test (Prop. 1) routes almost all candidates to the
communication-free single-machine phase.  This example quantifies that:
it prints the SM-E share per machine and the (tiny) resulting network
traffic, and contrasts RADS with the shuffle-everything PSgL baseline.

Run:  python examples/road_network_motifs.py
"""

import repro
from repro.core.sme import SingleMachineSplit
from repro.graph import grid_road_network
from repro.query import best_execution_plan, paper_query
from repro.query.symmetry import symmetry_breaking_constraints


def main() -> None:
    graph = grid_road_network(50, 50, extra_edge_prob=0.04, seed=7)
    print(f"road network: {graph}")
    session = repro.open(graph).with_cluster(machines=6)
    cluster = session.cluster()

    pattern = paper_query("q1")  # squares: city blocks
    plan = best_execution_plan(pattern)
    constraints = symmetry_breaking_constraints(pattern)
    split = SingleMachineSplit(pattern, plan, constraints)

    print(f"\nquery {pattern.name}: span(u_start) = "
          f"{pattern.span(plan.start_vertex)}")
    print("per-machine SM-E split (Prop. 1):")
    total_local, total_all = 0, 0
    for t in range(cluster.num_machines):
        local = cluster.partition.machine(t)
        c1, c2 = split.split(local)
        total_local += len(c1)
        total_all += len(c1) + len(c2)
        print(
            f"  machine {t}: {len(c1):5d} of {len(c1) + len(c2):5d} "
            f"candidates handled locally "
            f"({100 * len(c1) / max(1, len(c1) + len(c2)):5.1f}%)"
        )
    print(f"overall SM-E share: {100 * total_local / max(1, total_all):.1f}%")

    session.query(pattern)
    for name in ("RADS", "PSgL"):
        result = session.engine(name).run()
        print(
            f"\n{result.engine:>5}: {result.embedding_count} squares, "
            f"time {result.makespan:.4f}s, "
            f"comm {result.total_comm_bytes / 1024:.1f} KB"
        )


if __name__ == "__main__":
    main()
