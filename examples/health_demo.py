#!/usr/bin/env python
"""Failure-visibility walkthrough: the event journal and the SLO health op.

Shows the PR-10 story end to end: a socket-backed query server with one
*announced* shard worker gets that worker killed mid-run.  The failure
is not silent — the coordinator journals a ``worker.lost`` event that
carries the blocked request's trace id, the ``health`` op flips to
``degraded`` with the lost address as evidence, and the moment a
replacement worker announces, the blocked query completes (bit-identical
result) and health returns to ``ok``.  The CLI twins:

    python -m repro serve --port P --backend socket --events-log ev.jsonl
    python -m repro events --port P --follow
    python -m repro health --port P --watch    # exit code 0 only when ok

Run:  python examples/health_demo.py
"""

import threading
import time

import repro
from repro.api import RunConfig
from repro.distributed import ShardRegistry, ShardWorker
from repro.graph import powerlaw_cluster
from repro.service import QueryServer, connect


def show_events(records):
    for record in records:
        extras = {
            k: v for k, v in record.items()
            if k not in ("ts", "level", "component", "kind", "seq")
        }
        tail = "  " + ", ".join(
            f"{k}={v}" for k, v in sorted(extras.items())
        ) if extras else ""
        print(f"  [{record['level']:<7}] {record['component']}: "
              f"{record['kind']}{tail}")


def wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise RuntimeError("timed out")


def main() -> None:
    graph = powerlaw_cluster(400, edges_per_vertex=4, seed=42)
    # Serial reference for the bit-parity claim at the end.
    serial = (
        repro.open(graph).with_cluster(machines=3)
        .engine("rads").query("q3").run()
    )
    registry = ShardRegistry()
    config = RunConfig(machines=3, backend="socket")
    replacement = None

    with QueryServer(
        graph, config, threads=1, shard_registry=registry
    ) as server:
        # One worker announces itself to the server (heartbeat path);
        # the announce is journaled as a worker.joined event.
        worker = ShardWorker(
            announce=server.address, announce_interval=60.0
        ).start()
        try:
            wait_for(lambda: len(registry) == 1)
            with connect(server.address, timeout=60) as client:
                cursor = client.events()["last_seq"]
                print(f"health with a whole roster: "
                      f"{client.health()['status']}")
                reference = client.submit("q2", engine="rads")
                print(f"warm run: {reference.embedding_count} embeddings "
                      f"in {reference.makespan:.3f}s simulated\n")

                # Kill the worker, then submit a fresh (uncached) query:
                # the request blocks on the broken roster instead of
                # failing, and its drive thread is what discovers the
                # death — so the event carries this request's trace id.
                print("killing the announced shard worker mid-run...")
                worker.crash()
                served = []

                def resubmit():
                    with connect(server.address, timeout=120) as c2:
                        served.append(
                            c2.submit("q3", engine="rads", trace=True)
                        )

                thread = threading.Thread(target=resubmit)
                thread.start()

                def lost():
                    return [
                        r for r in client.events(since=cursor)["events"]
                        if r["kind"] == "worker.lost"
                    ]

                wait_for(lambda: lost())
                print("the journal saw it (repro events):")
                show_events(client.events(since=cursor)["events"])

                verdict = client.health()
                rule = next(r for r in verdict["rules"]
                            if r["name"] == "worker_loss")
                print(f"\nhealth: {verdict['status']}  "
                      f"firing: {verdict['firing']}")
                print(f"evidence: lost {rule['evidence']['address']} "
                      f"during trace {rule['evidence']['trace_id']}")

                # A replacement announce both unblocks the waiting
                # query and clears the rule.
                print("\nstarting a replacement worker...")
                replacement = ShardWorker(
                    announce=server.address, announce_interval=60.0
                ).start()
                thread.join(timeout=120)
                result = served[0]
                assert result.embedding_count == serial.embedding_count
                print(f"blocked query completed on the replacement: "
                      f"{result.embedding_count} embeddings "
                      f"(bit-identical to a serial run)")
                print(f"health after recovery: "
                      f"{client.health()['status']}")
                print("\nfull event tail for the episode:")
                show_events(client.events(since=cursor)["events"])
        finally:
            worker.close()
            if replacement is not None:
                replacement.close()


if __name__ == "__main__":
    main()
