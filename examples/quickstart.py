#!/usr/bin/env python
"""Quickstart: enumerate a pattern on a simulated cluster with RADS.

Builds a small social-style graph, opens a :mod:`repro.api` session over
it, and counts embeddings of the paper's q4 ("house") query — comparing
RADS against the single-machine oracle.

Run:  python examples/quickstart.py
"""

import repro
from repro.graph import powerlaw_cluster


def main() -> None:
    # 1. A data graph (any Graph works; repro.open also takes a file path —
    #    see repro.graph.generators and repro.graph.io).
    graph = powerlaw_cluster(800, edges_per_vertex=4, seed=42)
    print(f"data graph: {graph}")

    # 2. A session: graph + simulated cluster (METIS-like partition over
    #    4 machines) + engine + query, composed fluently.
    session = repro.open(graph).with_cluster(machines=4)

    # 3. Enumerate with RADS (any registry name/alias works: "rads",
    #    "crystal", "wcoj", ... — see repro.default_registry().describe()).
    #    Queries are registered names ("q4", aliases like "house"), a
    #    Pattern, or edge-list DSL: .query("a-b, b-c, c-a, a-d, b-e, d-e")
    #    builds the same house pattern on the fly.
    result = session.engine("rads").query("q4").run(collect=True)
    print(result.summary())
    print(f"embeddings found: {result.embedding_count}")
    print(f"simulated makespan: {result.makespan:.4f}s")
    print(f"network traffic: {result.comm_mb:.3f} MB")
    print(f"peak simulated memory: {result.peak_memory / 1e6:.2f} MB")

    # 4. Cross-check against the single-machine oracle (same session,
    #    fresh cluster stats per run).
    oracle = session.engine("oracle").run(collect=True)
    assert set(result.embeddings) == set(oracle.embeddings)
    print("matches single-machine ground truth: OK")

    # 5. Why this execution?  explain() returns the chosen decomposition
    #    (units, matching order, symmetry breaking, cost estimates) as a
    #    serializable record — see examples/explain_plans.py for more.
    explanation = session.engine("rads").explain()
    print(
        f"plan: {explanation.num_rounds} round(s), "
        f"start u{explanation.start_vertex}, "
        f"matching order {explanation.matching_order}"
    )

    # 6. Results serialize: to_dict/from_dict round-trip for archiving.
    record = result.to_dict()
    assert repro.RunResult.from_dict(record) == result
    print(f"serialized record keys: {sorted(record)[:4]} ...")

    # A peek at three embeddings (tuples indexed by query vertex id).
    for emb in sorted(result.embeddings)[:3]:
        print("  example embedding:", emb)


if __name__ == "__main__":
    main()
