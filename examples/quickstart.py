#!/usr/bin/env python
"""Quickstart: enumerate a pattern on a simulated cluster with RADS.

Builds a small social-style graph, partitions it over 4 simulated machines,
and counts embeddings of the paper's q4 ("house") query — comparing RADS
against the single-machine oracle.

Run:  python examples/quickstart.py
"""

from repro.bench.harness import make_cluster
from repro.engines import RADSEngine, SingleMachineEngine
from repro.graph import powerlaw_cluster
from repro.query import paper_query


def main() -> None:
    # 1. A data graph (any Graph works; see repro.graph.generators and
    #    repro.graph.io for loaders).
    graph = powerlaw_cluster(800, edges_per_vertex=4, seed=42)
    print(f"data graph: {graph}")

    # 2. The query pattern (q1..q8 / cq1..cq4 from the paper, or build your
    #    own with repro.query.Pattern).
    pattern = paper_query("q4")
    print(f"query: {pattern}")

    # 3. A simulated cluster: METIS-like partition over 4 machines.
    cluster = make_cluster(graph, num_machines=4)

    # 4. Enumerate with RADS.
    engine = RADSEngine()
    result = engine.run(cluster, pattern)
    print(result.summary())
    print(f"execution plan rounds: {engine.last_plan.num_rounds}")
    print(f"embeddings found: {result.embedding_count}")
    print(f"simulated makespan: {result.makespan:.4f}s")
    print(f"network traffic: {result.comm_mb:.3f} MB")
    print(f"peak simulated memory: {result.peak_memory / 1e6:.2f} MB")

    # 5. Cross-check against the single-machine oracle.
    oracle = SingleMachineEngine().run(cluster.fresh_copy(), pattern)
    assert set(result.embeddings) == set(oracle.embeddings)
    print("matches single-machine ground truth: OK")

    # A peek at three embeddings (tuples indexed by query vertex id).
    for emb in sorted(result.embeddings)[:3]:
        print("  example embedding:", emb)


if __name__ == "__main__":
    main()
