#!/usr/bin/env python
"""Explain plans: the declarative query surface end to end.

Builds queries three ways (registered name, edge-list DSL, fluent
builder), then asks ``Session.explain()`` *why* each engine would run
them the way it does — decomposition units, matching order, symmetry
breaking, runner-up plans, per-round cost estimates — and shows the
labeled front door plus JSON serialization.

Run:  python examples/explain_plans.py
"""

import json

import repro
from repro.graph import powerlaw_cluster
from repro.graph.labeled import label_randomly


def main() -> None:
    graph = powerlaw_cluster(600, edges_per_vertex=4, seed=7)
    print(f"data graph: {graph}\n")

    # 1. Three spellings of the same query surface.
    by_name = repro.resolve_query("q4")             # the paper's house
    by_dsl = repro.pattern("apex-l, apex-r, l-r, l-bl, r-br, bl-br")
    by_builder = (
        repro.PatternBuilder()
        .path("apex", "l", "bl", "br", "r", "apex")
        .edge("l", "r")
        .build()
    )
    assert by_dsl.isomorphic_to(by_name)
    assert by_builder.isomorphic_to(by_name)
    print(f"DSL house dedupes against the catalogue: {by_dsl.name!r}")
    print(f"|Aut| = {len(by_dsl.automorphism_group())}\n")

    # 2. explain(): why does RADS run q4 this way?  (Cost estimates are
    #    included because the session knows the data graph.)
    session = repro.open(graph).with_cluster(machines=4)
    explanation = session.engine("rads").query("q4").explain()
    print(explanation)
    print()

    # 3. The same query through every paper engine: same decomposition
    #    view, engine-specific extras (join units, core, orders...).
    for name in ("PSgL", "TwinTwig", "SEED", "Crystal"):
        ex = session.engine(name).query("q4").explain(with_estimates=False)
        print(f"{name:>9} extras: {ex.extras}")
    print()

    # 4. Explanations serialize exactly like RunResult.
    record = explanation.to_dict()
    rebuilt = repro.QueryExplanation.from_dict(
        json.loads(json.dumps(record))
    )
    assert rebuilt.to_dict() == record
    print(f"JSON record keys: {sorted(record)[:6]} ...")
    print()

    # 5. The labeled front door: a labeled DSL query runs through the
    #    label-capable engine (TurboIso filters) on a labeled graph.
    labeled = label_randomly(graph, num_labels=3, seed=1)
    result = (
        repro.open(labeled)
        .engine("single")
        .query("a:0-b:1, b-c:0, c-a")
        .run(collect=True)
    )
    print(
        f"labeled triangles (labels 0-1-0): {result.embedding_count} "
        f"matches, e.g. {sorted(result.embeddings)[:2]}"
    )


if __name__ == "__main__":
    main()
