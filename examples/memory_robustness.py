#!/usr/bin/env python
"""Memory robustness demo — the paper's 8G-cap experiment (Exp-4).

The paper caps per-machine memory and shows Crystal crashing while RADS
finishes, thanks to region groups (Sec. 6): RADS splits the start
candidates into proximity groups sized to the budget and processes them
sequentially, trading peak memory for extra rounds.

This script sweeps the simulated memory cap downwards and reports, for each
engine, whether it survives and what its peak usage was.

Run:  python examples/memory_robustness.py
"""

from repro.bench.datasets import uk2002_like
from repro.bench.harness import make_cluster
from repro.engines import all_engines
from repro.query import paper_query


def main() -> None:
    graph = uk2002_like(scale=0.2)
    pattern = paper_query("q6")  # triangle-free: no Crystal index shortcut
    print(f"graph: {graph}; query: {pattern.name}\n")

    caps = [None, 32 * 1024 * 1024, 4 * 1024 * 1024, 1024 * 1024]
    engines = all_engines()
    header = f"{'cap':>10}" + "".join(f"{name:>14}" for name in engines)
    print(header)
    for cap in caps:
        cells = []
        for name, engine_cls in engines.items():
            cluster = make_cluster(graph, num_machines=4,
                                   memory_capacity=cap)
            result = engine_cls().run(
                cluster, pattern, collect_embeddings=False
            )
            if result.failed:
                cells.append(f"{'OOM':>14}")
            else:
                cells.append(f"{result.peak_memory / 1e6:>11.2f} MB")
        label = "unlimited" if cap is None else f"{cap // (1024 * 1024)} MB"
        print(f"{label:>10}" + "".join(cells))

    print(
        "\nRADS keeps finishing long after the baselines crash because "
        "region groups (and final-round result streaming) bound its "
        "working set; the baselines must hold their full intermediate "
        "results.  Below the cost of a single region group RADS finally "
        "hits its own floor."
    )


if __name__ == "__main__":
    main()
