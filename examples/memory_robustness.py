#!/usr/bin/env python
"""Memory robustness demo — the paper's 8G-cap experiment (Exp-4).

The paper caps per-machine memory and shows Crystal crashing while RADS
finishes, thanks to region groups (Sec. 6): RADS splits the start
candidates into proximity groups sized to the budget and processes them
sequentially, trading peak memory for extra rounds.

This script sweeps the simulated memory cap downwards with one
`repro.api` session per cap (``memory_mb`` is a RunConfig knob) and
reports, for each engine, whether it survives and what its peak usage was.

Run:  python examples/memory_robustness.py
"""

import repro
from repro.bench.datasets import uk2002_like

#: Per-machine caps in MiB; None = unlimited.
CAPS = [None, 32, 4, 1]


def main() -> None:
    graph = uk2002_like(scale=0.2)
    pattern = "q6"  # triangle-free: no Crystal index shortcut
    print(f"graph: {graph}; query: {pattern}\n")

    session = repro.open(graph).query(pattern)
    engine_names = [
        spec.name for spec in session.registry.specs(paper=True)
    ]
    header = f"{'cap':>10}" + "".join(f"{name:>14}" for name in engine_names)
    print(header)
    for cap in CAPS:
        session.with_cluster(machines=4, memory_mb=cap)
        cells = []
        for name in engine_names:
            result = session.engine(name).run()
            if result.failed:
                cells.append(f"{'OOM':>14}")
            else:
                cells.append(f"{result.peak_memory / 1e6:>11.2f} MB")
        label = "unlimited" if cap is None else f"{cap} MB"
        print(f"{label:>10}" + "".join(cells))

    print(
        "\nRADS keeps finishing long after the baselines crash because "
        "region groups (and final-round result streaming) bound its "
        "working set; the baselines must hold their full intermediate "
        "results.  Below the cost of a single region group RADS finally "
        "hits its own floor."
    )


if __name__ == "__main__":
    main()
