#!/usr/bin/env python
"""BigJoin vs TwinTwig vs RADS — why worst-case optimality matters.

BigJoin (Ammar et al., 2018; the paper's Sec. 8) extends embeddings one
vertex at a time using *intersections* of all matched neighbours, so its
intermediate results never exceed the worst-case output bound.  TwinTwig's
binary star joins have no such guarantee: on hub-heavy graphs their
intermediate relations dwarf the final result.  RADS explores like BigJoin
but without shuffling the prefixes at all.

Run:  python examples/worst_case_optimal_join.py
"""

import repro
from repro.graph import powerlaw_cluster


def main() -> None:
    graph = powerlaw_cluster(500, edges_per_vertex=4, seed=11)
    print(f"hub-heavy graph: {graph} "
          f"(max degree {int(graph.degrees().max())})")
    session = repro.open(graph).with_cluster(machines=4).query("q4")

    rows = []
    for name in ("RADS", "wcoj", "tt"):  # aliases resolve too
        result = session.engine(name).run()
        rows.append((result.engine, result))
        print(
            f"{result.engine:>9}: time {result.makespan:9.4f}s  "
            f"comm {result.comm_mb:8.3f} MB  "
            f"peak {result.peak_memory / 1e6:8.2f} MB  "
            f"({result.embedding_count} embeddings)"
        )
    counts = {r.embedding_count for _, r in rows}
    assert len(counts) == 1, "engines disagree"

    bigjoin = dict(rows)["BigJoin"]
    twintwig = dict(rows)["TwinTwig"]
    rads = dict(rows)["RADS"]
    print(
        f"\nBigJoin's peak memory is {twintwig.peak_memory / max(1, bigjoin.peak_memory):.1f}x "
        "smaller than TwinTwig's (worst-case optimality), while RADS "
        f"additionally ships {bigjoin.total_comm_bytes / max(1, rads.total_comm_bytes):.1f}x "
        "fewer bytes (no intermediate-result exchange at all)."
    )


if __name__ == "__main__":
    main()
