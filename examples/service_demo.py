#!/usr/bin/env python
"""Query service walkthrough: serve a graph, submit over a socket, hit the cache.

Starts the :mod:`repro.service` query server in-process (the same thing
``python -m repro serve --graph g.npz --port P`` runs), connects the thin
client, and shows the three serving behaviours the layer exists for:

1. a cold query pays full enumeration (``cache: miss``),
2. repeating it is answered from the canonical-pattern result cache
   (``cache: hit``) with bit-identical stats,
3. an *isomorphic rewrite* — the same triangle spelled with different
   vertex names — hits too, because cache keys use
   ``Pattern.canonical_key()``.

Run:  python examples/service_demo.py
"""

import repro
from repro.graph import powerlaw_cluster


def main() -> None:
    # 1. A data graph and a session (exactly like quickstart.py).
    graph = powerlaw_cluster(600, edges_per_vertex=4, seed=42)
    session = repro.open(graph).with_cluster(machines=4)
    print(f"data graph: {graph}")

    # 2. Serve it.  port=0 picks a free port; Session.serve() starts the
    #    server on a background thread and returns it.  The CLI twin is:
    #      python -m repro serve --graph g.npz --port 7463
    with session.serve(port=0, threads=4) as server:
        host, port = server.address
        print(f"serving on {host}:{port}")

        # 3. A client (per thread / per process).  The CLI twin is:
        #      python -m repro submit --port 7463 --query "a-b, b-c, c-a"
        with repro.connect(server.address) as client:
            print(f"connected: protocol v{client.hello['version']}, "
                  f"graph {client.hello['graph'][:12]}...")

            cold = client.submit("a-b, b-c, c-a", engine="rads")
            print(f"\ncold query   -> cache: {client.last_cache}")
            print(f"  {cold.summary()}")

            warm = client.submit("a-b, b-c, c-a", engine="rads")
            print(f"repeat       -> cache: {client.last_cache}")

            iso = client.submit("x-y, y-z, z-x", engine="rads")
            print(f"isomorphic   -> cache: {client.last_cache}")

            assert warm.embedding_count == cold.embedding_count
            assert iso.embedding_count == cold.embedding_count
            assert warm.makespan == cold.makespan
            print("counts and stats are bit-identical across all three")

            # 4. The scheduler handles many outstanding queries at once;
            #    submissions carry priorities and timeouts, identical
            #    in-flight queries are deduplicated, and every response
            #    surfaces the cache counters.
            explanation = client.explain("q4", engine="rads")
            print(f"\nexplain over the wire: {explanation.engine} runs q4 "
                  f"in {len(explanation.rounds)} rounds")

            stats = client.stats()
            print(f"server stats: {stats['submitted']} submitted, "
                  f"cache {stats['cache']['hits']} hits / "
                  f"{stats['cache']['misses']} misses "
                  f"({stats['cache']['entries']} entries)")
            print(f"hit counters on the result: "
                  f"service.cache_hit={iso.counters['service.cache_hit']}")

    print("\nserver closed; see ROADMAP.md 'Service layer' for the "
          "protocol schema and cache-key definition")


if __name__ == "__main__":
    main()
