#!/usr/bin/env python
"""Labeled subgraph search with TurboIso-style filtering.

The paper's substrate algorithm, TurboIso, is a *labeled* matcher; this
example exercises that layer on a synthetic collaboration network whose
vertices are typed (junior / senior / PI) and looks for a labeled
"supervision triangle": a PI connected to a senior and a junior member who
also collaborate with each other.

Run:  python examples/labeled_search.py
"""

from repro.enumeration import labeled_embeddings
from repro.enumeration.backtracking import EnumerationStats
from repro.enumeration.labeled import LabeledPattern, candidate_sets
from repro.graph import community_graph, label_randomly
from repro.query.patterns import triangle

JUNIOR, SENIOR, PI = 0, 1, 2
LABEL_NAMES = {JUNIOR: "junior", SENIOR: "senior", PI: "PI"}


def main() -> None:
    # A community-structured collaboration graph; roles follow a skewed
    # distribution (many juniors, few PIs).
    graph = community_graph(25, 20, intra_prob=0.35, inter_edges=3, seed=4)
    data = label_randomly(
        graph, 3, seed=7, weights={JUNIOR: 0.6, SENIOR: 0.3, PI: 0.1}
    )
    print(f"collaboration network: {data}")
    for label, count in sorted(data.label_frequencies().items()):
        print(f"  {LABEL_NAMES[label]:>7}: {count} people")

    # The labeled query: a triangle with one vertex per role.
    query = LabeledPattern(triangle(), [PI, SENIOR, JUNIOR])
    print(f"\nquery: supervision triangle {query}")

    # Candidate filtering is where labels pay off: compare the raw
    # label-indexed candidates with the NLF-filtered ones.
    plain = candidate_sets(data, query, use_nlf=False)
    filtered = candidate_sets(data, query, use_nlf=True)
    for u in query.pattern.vertices():
        print(
            f"  candidates for {LABEL_NAMES[query.label(u)]:>7}: "
            f"{len(plain[u]):4d} by label, {len(filtered[u]):4d} after NLF"
        )

    stats = EnumerationStats()
    matches = labeled_embeddings(data, query, stats=stats)
    print(f"\nsupervision triangles found: {len(matches)}")
    print(f"backtracking calls: {stats.recursive_calls}")
    for emb in sorted(matches)[:5]:
        pi, senior, junior = emb
        print(f"  PI {pi} - senior {senior} - junior {junior}")


if __name__ == "__main__":
    main()
