#!/usr/bin/env python
"""The two related-work families the paper dismisses, quantified.

Sec. 8 of the paper argues — without racing them — that (a) single-round
multiway joins duplicate most edges when the pattern is complex, and
(b) d-hop replication may fetch entire neighbour partitions when the data
graph has a small diameter.  This example runs both engines next to RADS
on two graphs chosen to flip the replication story.

Run:  python examples/related_work_baselines.py
"""

import repro
from repro.engines import MultiwayJoinEngine, ReplicationEngine
from repro.graph import grid_road_network, powerlaw_cluster
from repro.query import paper_query


def run_on(graph, label: str) -> None:
    session = repro.open(graph).with_cluster(machines=6)
    print(f"\n=== {label}: {graph} ===")
    for qname in ("q2", "q8"):
        pattern = paper_query(qname)
        print(f"\n  query {qname} ({pattern.num_edges} edges):")
        counts = set()
        session.query(qname)
        for name in ("RADS", "Multiway", "Replication"):
            # Keep the instance: the extensions expose run introspection
            # (last_shares / last_replicated_*) beyond the RunResult.
            engine = session.engine(name).build_engine()
            result = engine.run(
                session.cluster(), pattern, collect_embeddings=False
            )
            counts.add(result.embedding_count)
            extra = ""
            if isinstance(engine, MultiwayJoinEngine):
                extra = (
                    f"  shares={engine.last_shares} "
                    f"copies={engine.last_replicated_tuples}"
                )
            if isinstance(engine, ReplicationEngine):
                extra = (
                    f"  replicated={engine.last_replicated_vertices} vertices"
                )
            print(
                f"    {engine.name:>12}: {result.makespan * 1e3:8.2f} ms, "
                f"{result.total_comm_bytes / 1024:9.1f} KB net{extra}"
            )
        assert len(counts) == 1, "engines disagree"
        print(f"    (all engines agree: {counts.pop()} embeddings)")


def main() -> None:
    # Small diameter, dense: replication has to pull big neighbourhoods.
    run_on(powerlaw_cluster(500, 4, seed=3), "small-diameter power-law graph")
    # Huge diameter, sparse: the d-hop ball around the border stays thin.
    run_on(
        grid_road_network(22, 22, extra_edge_prob=0.05, seed=5),
        "huge-diameter road network",
    )
    print(
        "\nThe multiway join's edge copies grow with query complexity\n"
        "(compare q2 vs q8), and replication flips from cheap on the road\n"
        "network to expensive on the small-diameter graph — the paper's\n"
        "two qualitative dismissals, reproduced."
    )


if __name__ == "__main__":
    main()
